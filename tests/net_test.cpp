// The networking layer: epoll event loop (timers + fd dispatch), TCP
// transports carrying real BGP sessions over loopback sockets into the
// Platform, fault-overlay composition, close semantics (half-close and
// hard reset), and the HTTP operator plane (/metrics, /healthz).
//
// Every test binds 127.0.0.1 port 0 (ephemeral) and drives both ends of
// the connection from ONE event loop — the tests are single-threaded,
// deterministic, and sanitizer-friendly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collector/platform.hpp"
#include "daemon/daemon.hpp"
#include "daemon/faults.hpp"
#include "net/event_loop.hpp"
#include "net/http_endpoint.hpp"
#include "net/tcp_transport.hpp"
#include "wire/messages.hpp"

namespace gill::net {
namespace {

using daemon::SessionState;

constexpr bgp::Timestamp kNow = 1000;  // fixed logical time: no hold expiry

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

/// Spins the loop (short waits) until `done` returns true or `iterations`
/// passes elapse, running `step` between waits to pump the session layers.
template <typename Done, typename Step>
bool drive(EventLoop& loop, int iterations, Done done, Step step) {
  for (int i = 0; i < iterations; ++i) {
    loop.run_once(2);
    step();
    if (done()) return true;
  }
  return done();
}

/// A raw non-blocking loopback client socket (no TcpTransport machinery),
/// for exercising the server against arbitrary byte-level behaviour.
int raw_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  EXPECT_TRUE(rc == 0 || errno == EINPROGRESS);
  return fd;
}

/// Blocking-style HTTP exchange over a non-blocking socket: sends
/// `request`, spins the loop so the server can respond, and returns the
/// full response (the server closes after one response).
std::string http_exchange(EventLoop& loop, std::uint16_t port,
                          const std::string& request) {
  const int fd = raw_client(port);
  std::string response;
  std::size_t sent = 0;
  bool closed = false;
  for (int i = 0; i < 3000 && !closed; ++i) {
    loop.run_once(1);
    if (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        response.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) closed = true;  // response complete
      break;
    }
  }
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// EventLoop: timer wheel and fd dispatch.
// ---------------------------------------------------------------------------

TEST(EventLoop, OneShotTimerFiresOnce) {
  EventLoop loop(1);
  int fired = 0;
  loop.call_after(10, [&] { ++fired; });
  EXPECT_EQ(loop.pending_timers(), 1u);
  while (loop.now_ms() < 60) loop.run_once(2);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoop, RecurringTimerRepeatsUntilCancelled) {
  EventLoop loop(1);
  int fired = 0;
  EventLoop::TimerId id = 0;
  id = loop.call_every(5, [&] {
    if (++fired == 3) loop.cancel(id);
  });
  while (loop.now_ms() < 100) loop.run_once(2);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoop, DeadlineBeyondOneWheelRotationStillFires) {
  // 256 slots at 1 ms granularity: a 300 ms deadline wraps the wheel.
  EventLoop loop(1);
  bool fired = false;
  loop.call_after(300, [&] { fired = true; });
  while (loop.now_ms() < 280) loop.run_once(5);
  EXPECT_FALSE(fired);  // not early
  while (loop.now_ms() < 400 && !fired) loop.run_once(5);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, FdReadableDispatchAndSelfRemoval) {
  EventLoop loop(1);
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  int dispatched = 0;
  ASSERT_TRUE(loop.add(fds[0], kReadable, [&](std::uint32_t events) {
    EXPECT_TRUE(events & kReadable);
    char buffer[16];
    while (::read(fds[0], buffer, sizeof buffer) > 0) {
    }
    if (++dispatched == 2) loop.remove(fds[0]);  // safe mid-dispatch
  }));
  EXPECT_TRUE(loop.watched(fds[0]));
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    while (dispatched == round) loop.run_once(5);
  }
  EXPECT_EQ(dispatched, 2);
  EXPECT_FALSE(loop.watched(fds[0]));
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// ByteQueue: the zero-copy partial-drain path socket senders use.
// ---------------------------------------------------------------------------

TEST(ByteQueue, PeekConsumeDrainsPartially) {
  daemon::ByteQueue queue;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  queue.write(data);
  auto view = queue.peek();
  ASSERT_EQ(view.size(), 5u);
  EXPECT_EQ(view[0], 1);
  queue.consume(2);  // a short send(): tail stays queued
  view = queue.peek();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 3);
  queue.consume(100);  // clamped
  EXPECT_TRUE(queue.empty());
  queue.write(data);  // reusable after full drain
  EXPECT_EQ(queue.size(), 5u);
}

// ---------------------------------------------------------------------------
// A Platform peering over real loopback sockets.
// ---------------------------------------------------------------------------

/// One Platform listening on an ephemeral loopback port, with the accept
/// path of gill_collectord: every inbound socket becomes a TcpTransport
/// handed to add_remote_peer.
struct ServerHarness {
  EventLoop loop;
  metrics::Registry registry;
  collect::Platform platform;
  TcpListener listener{loop, &registry};
  std::map<bgp::VpId, TcpTransport*> transports;
  std::vector<bgp::VpId> accepted;

  explicit ServerHarness(
      std::function<void(collect::PlatformConfig&)> tweak = {},
      const std::string& host = "127.0.0.1")
      : platform(make_config(std::move(tweak))) {
    EXPECT_TRUE(listener.listen(
        host, 0, [this](int fd, std::string, std::uint16_t) {
          auto transport =
              std::make_unique<TcpTransport>(loop, Role::kDaemonSide,
                                             &registry);
          auto* raw = transport.get();
          transport->adopt(fd);
          const bgp::VpId vp =
              platform.add_remote_peer(0, kNow, std::move(transport));
          // §8: track the session's table (RIB snapshots every 8 hours).
          platform.daemon_mut(vp).enable_rib_dumps(8 * 3600);
          transports[vp] = raw;
          accepted.push_back(vp);
        }));
  }

  collect::PlatformConfig make_config(
      std::function<void(collect::PlatformConfig&)> tweak) {
    collect::PlatformConfig config;
    config.registry = &registry;
    if (tweak) tweak(config);
    return config;
  }

  void pump() {
    platform.step(kNow);
    for (auto& [vp, transport] : transports) transport->sync();
  }
};

/// A FakePeer dialing the harness over a peer-side TcpTransport: the
/// scripted router from daemon_test, now behind a real socket.
struct TcpFakePeer {
  TcpTransport transport;
  daemon::FakePeer peer;

  TcpFakePeer(ServerHarness& server, bgp::AsNumber as,
              const std::string& host = "127.0.0.1")
      : transport(server.loop, Role::kPeerSide, &server.registry),
        peer(as, transport) {
    EXPECT_TRUE(transport.dial(host, server.listener.port()));
  }

  void pump() {
    peer.poll();
    transport.sync();
  }
};

TEST(TcpSession, LoopbackHandshakeReachesEstablished) {
  ServerHarness server;
  TcpFakePeer client(server, 65010);
  const bool established = drive(
      server.loop, 400,
      [&] {
        return server.accepted.size() == 1 &&
               server.platform.daemon_of(server.accepted[0]).state() ==
                   SessionState::kEstablished &&
               client.peer.established();
      },
      [&] {
        server.pump();
        client.pump();
      });
  ASSERT_TRUE(established);
  const bgp::VpId vp = server.accepted[0];
  // The AS was learned from the peer's OPEN, not configured.
  EXPECT_EQ(server.platform.daemon_of(vp).peer_as(), 65010u);
  EXPECT_FALSE(server.platform.has_remote(vp));  // no local FakePeer
  EXPECT_EQ(server.listener.accepted(), 1u);
  EXPECT_TRUE(client.transport.handshake_done());
  EXPECT_GT(server.registry.counter_total("gill_net_bytes_read_total"), 0u);
  EXPECT_GT(server.registry.counter_total("gill_net_bytes_written_total"), 0u);
}

TEST(TcpSession, UpdatesOverTcpMatchInMemoryRib) {
  // The same update stream through (a) a loopback TCP session and (b) the
  // in-memory transport must land in identical RIBs.
  std::vector<bgp::Update> updates;
  for (int i = 0; i < 16; ++i) {
    bgp::Update update;
    update.time = kNow;
    update.prefix = pfx(("10.1." + std::to_string(i) + ".0/24").c_str());
    update.path = bgp::AsPath{65010, 65020, static_cast<bgp::AsNumber>(i)};
    updates.push_back(update);
  }
  bgp::Update withdrawal;
  withdrawal.time = kNow;
  withdrawal.prefix = pfx("10.1.3.0/24");
  withdrawal.withdrawal = true;

  // (a) Over TCP.
  ServerHarness server;
  TcpFakePeer client(server, 65010);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] {
        return !server.accepted.empty() &&
               server.platform.daemon_of(server.accepted[0]).state() ==
                   SessionState::kEstablished &&
               client.peer.established();
      },
      [&] {
        server.pump();
        client.pump();
      }));
  for (const auto& update : updates) client.peer.send_update(update);
  client.peer.send_update(withdrawal);
  const bgp::VpId vp = server.accepted[0];
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] { return server.platform.daemon_of(vp).rib().size() == 15; },
      [&] {
        server.pump();
        client.pump();
      }));

  // (b) In memory (the PR-0 baseline path).
  collect::PlatformConfig config;
  collect::Platform baseline(config);
  const bgp::VpId base_vp = baseline.add_peer(65010, kNow);
  baseline.daemon_mut(base_vp).enable_rib_dumps(8 * 3600);
  baseline.step(kNow);
  for (const auto& update : updates) baseline.remote(base_vp).send_update(update);
  baseline.remote(base_vp).send_update(withdrawal);
  baseline.step(kNow);

  EXPECT_EQ(server.platform.daemon_of(vp).rib().routes(),
            baseline.daemon_of(base_vp).rib().routes());
  EXPECT_EQ(server.platform.daemon_of(vp).stats().updates_received,
            baseline.daemon_of(base_vp).stats().updates_received);
}

TEST(TcpSession, EightConcurrentPeersAllEstablishAndFeed) {
  ServerHarness server;
  std::vector<std::unique_ptr<TcpFakePeer>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<TcpFakePeer>(
        server, static_cast<bgp::AsNumber>(65100 + i)));
  }
  const auto all_established = [&] {
    if (server.accepted.size() != 8) return false;
    for (const bgp::VpId vp : server.accepted) {
      if (server.platform.daemon_of(vp).state() != SessionState::kEstablished)
        return false;
    }
    for (const auto& client : clients)
      if (!client->peer.established()) return false;
    return true;
  };
  ASSERT_TRUE(drive(server.loop, 800, all_established, [&] {
    server.pump();
    for (auto& client : clients) client->pump();
  }));
  EXPECT_EQ(server.platform.peer_count(), 8u);
  EXPECT_EQ(server.listener.accepted(), 8u);

  // Every peer announces a distinct block; every RIB ends with 10 routes.
  for (int i = 0; i < 8; ++i) {
    clients[static_cast<std::size_t>(i)]->peer.send_synthetic_burst(
        10, (10u << 24) | (static_cast<std::uint32_t>(i + 1) << 16));
  }
  const auto all_fed = [&] {
    for (const bgp::VpId vp : server.accepted)
      if (server.platform.daemon_of(vp).rib().size() != 10) return false;
    return true;
  };
  EXPECT_TRUE(drive(server.loop, 800, all_fed, [&] {
    server.pump();
    for (auto& client : clients) client->pump();
  }));

  // The learned AS set matches the dialing population.
  std::vector<bgp::AsNumber> learned;
  for (const auto& entry : server.platform.health_snapshot().peers)
    learned.push_back(entry.as);
  std::sort(learned.begin(), learned.end());
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(learned[static_cast<std::size_t>(i)],
              static_cast<bgp::AsNumber>(65100 + i));
}

TEST(TcpSession, Ipv6LoopbackHandshakeReachesEstablished) {
  // The same collector accept path over AF_INET6: a bracketed bind
  // ("[::1]") and a bare-literal dial ("::1") both parse.
  ServerHarness server({}, "[::1]");
  TcpFakePeer client(server, 65010, "::1");
  const bool established = drive(
      server.loop, 400,
      [&] {
        return server.accepted.size() == 1 &&
               server.platform.daemon_of(server.accepted[0]).state() ==
                   SessionState::kEstablished &&
               client.peer.established();
      },
      [&] {
        server.pump();
        client.pump();
      });
  ASSERT_TRUE(established);
  EXPECT_EQ(server.platform.daemon_of(server.accepted[0]).peer_as(), 65010u);
  EXPECT_EQ(server.listener.accepted(), 1u);
}

// ---------------------------------------------------------------------------
// Outbound peerings (gill-collectord --dial): the collector initiates the
// TCP connection and, unlike accepted sessions, re-dials after a teardown.
// ---------------------------------------------------------------------------

/// A scripted remote *router* that accepts inbound connections: each
/// accepted socket becomes a kPeerSide transport driving a FakePeer — the
/// far end of a --dial peering. A fresh FakePeer per connection mirrors a
/// router restart (new TCP session, new handshake).
struct FakeRouter {
  EventLoop& loop;
  metrics::Registry& registry;
  bgp::AsNumber as;
  TcpListener listener;
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<daemon::FakePeer> peer;
  std::size_t connections = 0;

  FakeRouter(EventLoop& loop, metrics::Registry& registry, bgp::AsNumber as)
      : loop(loop), registry(registry), as(as), listener(loop, &registry) {
    EXPECT_TRUE(listener.listen(
        "127.0.0.1", 0, [this](int fd, std::string, std::uint16_t) {
          transport = std::make_unique<TcpTransport>(
              this->loop, Role::kPeerSide, &this->registry);
          transport->adopt(fd);
          peer = std::make_unique<daemon::FakePeer>(this->as, *transport);
          ++connections;
        }));
  }

  void pump() {
    if (peer) peer->poll();
    if (transport) transport->sync();
  }

  /// The router dies: its side of the session closes (FIN to the dialer).
  void restart() {
    peer.reset();
    transport.reset();  // closes the fd
  }
};

TEST(TcpSession, DialOutEstablishesAndRedialsAfterRouterRestart) {
  EventLoop loop;
  metrics::Registry registry;
  FakeRouter router(loop, registry, 65033);

  collect::PlatformConfig config;
  config.registry = &registry;
  config.retry.base = 1;  // reconnect after one logical second
  collect::Platform platform(config);
  auto transport =
      std::make_unique<TcpTransport>(loop, Role::kDaemonSide, &registry);
  auto* raw = transport.get();
  ASSERT_TRUE(raw->dial("127.0.0.1", router.listener.port()));
  bgp::Timestamp now = kNow;
  const bgp::VpId vp =
      platform.add_dialed_peer(65033, now, std::move(transport));
  // Unlike an accepted peer, the dialed session owns re-establishment.
  EXPECT_TRUE(platform.daemon_of(vp).auto_reconnect());

  const auto pump = [&] {
    platform.step(now);
    raw->sync();
    router.pump();
  };
  ASSERT_TRUE(drive(
      loop, 400,
      [&] {
        return platform.daemon_of(vp).state() == SessionState::kEstablished &&
               router.peer && router.peer->established();
      },
      pump));
  EXPECT_EQ(router.connections, 1u);

  // The router restarts: our side observes the close and tears down...
  router.restart();
  ASSERT_TRUE(drive(
      loop, 400,
      [&] { return platform.daemon_of(vp).state() == SessionState::kIdle; },
      pump));
  // ...then the retry policy re-dials once the backoff elapses; the
  // router's listener hands the fresh socket to a fresh FakePeer and the
  // session re-establishes end to end.
  ASSERT_TRUE(drive(
      loop, 800,
      [&] {
        now += 1;  // logical clock: the backoff elapses as we pump
        return platform.daemon_of(vp).state() == SessionState::kEstablished &&
               router.peer && router.peer->established();
      },
      pump));
  EXPECT_EQ(router.connections, 2u);
  EXPECT_GE(platform.daemon_of(vp).stats().reconnects, 1u);
}

TEST(TcpSession, HalfCloseTearsTheSessionDown) {
  ServerHarness server;
  const int fd = raw_client(server.listener.port());
  ASSERT_TRUE(drive(
      server.loop, 400, [&] { return server.accepted.size() == 1; },
      [&] { server.pump(); }));
  const bgp::VpId vp = server.accepted[0];
  // The daemon greeted us (OPEN, OpenSent); the "router" says goodbye
  // without ever speaking BGP: FIN via shutdown(SHUT_WR).
  EXPECT_EQ(server.platform.daemon_of(vp).state(), SessionState::kOpenSent);
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] {
        return !server.transports.at(vp)->socket_open() &&
               server.platform.daemon_of(vp).state() == SessionState::kIdle;
      },
      [&] { server.pump(); }));
  EXPECT_EQ(server.registry.counter_total("gill_net_remote_closes_total"), 1u);
  EXPECT_EQ(server.registry.counter_total("gill_net_socket_errors_total"), 0u);
  ::close(fd);
}

TEST(TcpSession, HardResetTearsTheSessionDown) {
  ServerHarness server;
  const int fd = raw_client(server.listener.port());
  ASSERT_TRUE(drive(
      server.loop, 400, [&] { return server.accepted.size() == 1; },
      [&] { server.pump(); }));
  const bgp::VpId vp = server.accepted[0];
  // SO_LINGER{on, 0} + close(): the kernel sends RST, not FIN.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard), 0);
  ::close(fd);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] {
        return !server.transports.at(vp)->socket_open() &&
               server.platform.daemon_of(vp).state() == SessionState::kIdle;
      },
      [&] { server.pump(); }));
  // ECONNRESET lands in the error counter, not the orderly-close one.
  EXPECT_EQ(server.registry.counter_total("gill_net_socket_errors_total"), 1u);
}

TEST(TcpTransport, WritesBeforeConnectCompletionAreBacklogged) {
  EventLoop loop;
  metrics::Registry registry;
  int server_fd = -1;
  TcpListener listener(loop, &registry);
  ASSERT_TRUE(listener.listen("127.0.0.1", 0,
                              [&](int fd, std::string, std::uint16_t) {
                                server_fd = fd;
                              }));
  TcpTransport client(loop, Role::kPeerSide, &registry);
  ASSERT_TRUE(client.dial("127.0.0.1", listener.port()));
  // Queue bytes while the non-blocking connect is still in flight.
  const std::vector<std::uint8_t> hello{'h', 'e', 'l', 'l', 'o'};
  client.write_to_daemon(hello);
  std::string received;
  ASSERT_TRUE(drive(
      loop, 400, [&] { return received.size() == hello.size(); },
      [&] {
        client.sync();
        if (server_fd >= 0) {
          char buffer[64];
          const ssize_t n = ::recv(server_fd, buffer, sizeof buffer,
                                   MSG_DONTWAIT);
          if (n > 0) received.append(buffer, static_cast<std::size_t>(n));
        }
      }));
  EXPECT_EQ(received, "hello");
  EXPECT_TRUE(client.handshake_done());
  EXPECT_EQ(client.backlog_bytes(), 0u);
  EXPECT_EQ(registry.counter_total("gill_net_connects_total"), 1u);
  if (server_fd >= 0) ::close(server_fd);
}

TEST(TcpSession, FaultyOverlayComposesOverTcp) {
  // FaultyTransport (PR 1) stays a pure in-memory decorator: the socket
  // pumps bytes through it via set_overlay, the daemon binds the overlay.
  EventLoop loop;
  metrics::Registry registry;
  std::unique_ptr<TcpTransport> server;
  std::unique_ptr<daemon::FaultyTransport> faulty;
  std::unique_ptr<daemon::BgpDaemon> bgp_daemon;
  TcpListener listener(loop, &registry);
  ASSERT_TRUE(listener.listen(
      "127.0.0.1", 0, [&](int fd, std::string, std::uint16_t) {
        server = std::make_unique<TcpTransport>(loop, Role::kDaemonSide,
                                                &registry);
        server->adopt(fd);
        faulty = std::make_unique<daemon::FaultyTransport>(
            daemon::FaultProfile{});  // no faults: pure pass-through proof
        server->set_overlay(*faulty);
        bgp_daemon = std::make_unique<daemon::BgpDaemon>(
            7, 65000, *faulty, nullptr, nullptr, &registry);
        bgp_daemon->start(kNow);
      }));
  TcpTransport client(loop, Role::kPeerSide, &registry);
  ASSERT_TRUE(client.dial("127.0.0.1", listener.port()));
  daemon::FakePeer peer(65020, client);
  ASSERT_TRUE(drive(
      loop, 400,
      [&] {
        return bgp_daemon &&
               bgp_daemon->state() == SessionState::kEstablished &&
               peer.established();
      },
      [&] {
        if (bgp_daemon) {
          bgp_daemon->poll(kNow);
          bgp_daemon->tick(kNow);
          server->sync();
        }
        peer.poll();
        client.sync();
      }));
  // Every byte crossed the fault layer.
  EXPECT_GT(faulty->fault_stats().delivered, 0u);
  EXPECT_EQ(bgp_daemon->peer_as(), 65020u);
}

// TCP is a byte stream: segment boundaries land anywhere, including inside
// the 19-byte header or the GR capability. The session must reassemble the
// OPEN/KEEPALIVE/UPDATE sequence no matter where the stream is cut.
TEST(TcpSession, FramesSplitAtEverySegmentBoundaryStillParse) {
  wire::OpenMessage open;
  open.as = 65010;
  open.hold_time = 90;
  open.bgp_id = 0x0A000001;
  open.gr_enabled = true;  // the capability bytes sit inside the split sweep
  std::vector<std::uint8_t> stream = wire::encode(open);
  const auto keepalive = wire::encode(wire::KeepaliveMessage{});
  stream.insert(stream.end(), keepalive.begin(), keepalive.end());
  wire::UpdateMessage update;
  update.nlri = {pfx("10.9.0.0/24")};
  update.path = bgp::AsPath{65010, 65020};
  const auto update_bytes = wire::encode(update);
  stream.insert(stream.end(), update_bytes.begin(), update_bytes.end());

  ServerHarness server;
  const auto feed = [&](const std::vector<std::size_t>& cuts) {
    const int fd = raw_client(server.listener.port());
    const std::size_t sessions = server.accepted.size();
    std::size_t sent = 0;
    std::size_t cut = 0;
    const bool done = drive(
        server.loop, 2000,
        [&] {
          if (server.accepted.size() <= sessions) return false;
          const auto vp = server.accepted.back();
          return server.platform.daemon_of(vp).state() ==
                     SessionState::kEstablished &&
                 server.platform.daemon_of(vp).rib().size() == 1;
        },
        [&] {
          server.pump();
          if (sent < stream.size()) {
            const std::size_t until =
                cut < cuts.size() ? cuts[cut] : stream.size();
            const ssize_t n = ::send(fd, stream.data() + sent, until - sent,
                                     MSG_NOSIGNAL);
            if (n > 0) sent += static_cast<std::size_t>(n);
            if (sent == until) ++cut;
          }
          char sink[4096];  // drain the daemon's OPEN/KEEPALIVE/EoR
          while (::recv(fd, sink, sizeof sink, 0) > 0) {
          }
        });
    EXPECT_TRUE(done) << "cut at " << (cuts.empty() ? 0 : cuts[0]);
    if (done) {
      const auto& rib = server.platform.daemon_of(server.accepted.back()).rib();
      EXPECT_NE(rib.find(pfx("10.9.0.0/24")), nullptr);
    }
    ::close(fd);
  };

  // Two segments, cut at every byte boundary of the stream.
  for (std::size_t split = 1; split < stream.size(); ++split) {
    feed({split});
  }
  // The degenerate case: one byte per segment, every boundary at once.
  std::vector<std::size_t> all_cuts;
  for (std::size_t i = 1; i < stream.size(); ++i) all_cuts.push_back(i);
  feed(all_cuts);
}

// ---------------------------------------------------------------------------
// The HTTP operator plane.
// ---------------------------------------------------------------------------

TEST(Http, MetricsResponseIsByteIdenticalToTheRegistry) {
  EventLoop loop;
  metrics::Registry endpoint_registry;  // the server's own counters
  metrics::Registry served;             // the scraped registry
  served.counter("gill_test_requests_total", "test counter").inc(41);
  HttpEndpoint http(loop, &endpoint_registry);
  http.serve_metrics(served);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));
  const std::string response = http_exchange(
      loop, http.port(), "GET /v1/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n")) << response;
  EXPECT_NE(response.find(std::string("Content-Type: ") +
                          kPrometheusContentType + "\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  const auto split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(response.substr(split + 4), served.expose_prometheus());
  EXPECT_EQ(
      endpoint_registry.counter_total("gill_net_http_requests_total"), 1u);
}

TEST(Http, RoutesQueriesAndErrors) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  http.route("/healthz", [] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"ok\":true}";
    return response;
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));
  const auto healthz = http_exchange(
      loop, http.port(), "GET /healthz?verbose=1 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(healthz.starts_with("HTTP/1.1 200 OK\r\n"));
  EXPECT_NE(healthz.find("{\"ok\":true}"), std::string::npos);
  EXPECT_NE(healthz.find("Content-Type: application/json\r\n"),
            std::string::npos);

  const auto missing = http_exchange(
      loop, http.port(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(missing.starts_with("HTTP/1.1 404 "));

  const auto post = http_exchange(
      loop, http.port(), "POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(post.starts_with("HTTP/1.1 405 "));

  const auto garbage = http_exchange(loop, http.port(), "NONSENSE\r\n\r\n");
  EXPECT_TRUE(garbage.starts_with("HTTP/1.1 400 "));
  EXPECT_EQ(registry.counter_total("gill_net_http_bad_requests_total"), 3u);
  EXPECT_EQ(http.open_connections(), 0u);
}

// The one-release grace window for pre-/v1 unversioned paths is over: the
// legacy spelling now 404s with the uniform error envelope while the
// canonical /v1 route keeps serving.
TEST(Http, RetiredLegacyPathAnswers404WithTheErrorEnvelope) {
  EventLoop loop;
  metrics::Registry registry;
  metrics::Registry served;
  served.counter("gill_test_requests_total", "test counter").inc(7);
  HttpEndpoint http(loop, &registry);
  http.serve_metrics(served);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));
  const std::string versioned = http_exchange(
      loop, http.port(), "GET /v1/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(versioned.starts_with("HTTP/1.1 200 OK\r\n"));
  const std::string legacy = http_exchange(
      loop, http.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(legacy.starts_with("HTTP/1.1 404 "));
  EXPECT_NE(legacy.find("\"code\":\"not_found\""), std::string::npos);
}

// A duplicate registration is a wiring bug, never a silent overwrite; an
// alias must point at something real.
TEST(Http, DuplicateRoutesAndDanglingAliasesAreRejected) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  EXPECT_TRUE(http.route("/v1/thing", [] { return HttpResponse{}; }));
  EXPECT_FALSE(http.route("/v1/thing", [] { return HttpResponse{}; }));
  EXPECT_TRUE(http.alias("/thing", "/v1/thing"));
  EXPECT_FALSE(http.alias("/thing", "/v1/thing"));   // alias already taken
  EXPECT_FALSE(http.route("/thing", [] { return HttpResponse{}; }));
  EXPECT_FALSE(http.alias("/other", "/v1/missing"));  // alias to nothing
}

// The uniform JSON error envelope, byte for byte, on every built-in error.
TEST(Http, BuiltInErrorsUseTheJsonEnvelope) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  http.route("/v1/thing", [] { return HttpResponse{}; });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  const auto missing = http_exchange(
      loop, http.port(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));
  EXPECT_NE(missing.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_TRUE(missing.ends_with(
      "{\"error\":{\"code\":\"not_found\",\"message\":\"no such route\"}}"))
      << missing;

  const auto post = http_exchange(
      loop, http.port(), "POST /v1/thing HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(post.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
  EXPECT_TRUE(post.ends_with("{\"error\":{\"code\":\"method_not_allowed\","
                             "\"message\":\"only GET is supported\"}}"))
      << post;

  const auto garbage = http_exchange(loop, http.port(), "NONSENSE\r\n\r\n");
  EXPECT_TRUE(garbage.starts_with("HTTP/1.1 400 Bad Request\r\n"));
  EXPECT_TRUE(garbage.ends_with(
      "{\"error\":{\"code\":\"bad_request\",\"message\":"
      "\"malformed request line\"}}"))
      << garbage;
}

TEST(Http, ParseU64IsStrict) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(parse_u64("", &value));
  EXPECT_FALSE(parse_u64("-1", &value));
  EXPECT_FALSE(parse_u64("+1", &value));
  EXPECT_FALSE(parse_u64("1 ", &value));
  EXPECT_FALSE(parse_u64("0x10", &value));
  EXPECT_FALSE(parse_u64("18446744073709551616", &value));  // overflow
}

TEST(Http, ChunkedStreamingResponsePullsTheProducerAsTheSocketDrains) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  int pulls = 0;
  http.route("/stream", [&pulls](const HttpRequest& request) {
    EXPECT_EQ(request.path, "/stream");
    const std::string* count = request.get("chunks");
    const int total = count ? std::stoi(*count) : 0;
    HttpResponse response;
    response.producer = [&pulls, total](std::string& out) {
      if (pulls >= total) return false;
      out += "chunk-" + std::to_string(pulls++) + ";";
      return true;
    };
    return response;
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));
  const std::string response = http_exchange(
      loop, http.port(), "GET /stream?chunks=3 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n")) << response;
  EXPECT_NE(response.find("Transfer-Encoding: chunked\r\n"),
            std::string::npos);
  EXPECT_EQ(response.find("Content-Length:"), std::string::npos);
  // Each producer pull became one chunk; the stream ends with the
  // zero-length terminator.
  EXPECT_EQ(pulls, 3);
  EXPECT_NE(response.find("chunk-0;"), std::string::npos);
  EXPECT_NE(response.find("chunk-2;"), std::string::npos);
  EXPECT_TRUE(response.ends_with("0\r\n\r\n")) << response;
  EXPECT_EQ(http.open_connections(), 0u);
}

TEST(Http, QueryParametersArePercentDecoded) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  std::map<std::string, std::string> seen;
  http.route("/q", [&seen](const HttpRequest& request) {
    seen = request.query;
    return HttpResponse{};
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));
  http_exchange(loop, http.port(),
                "GET /q?prefix=10.0.0.0%2F8&vp=7&flag HTTP/1.1\r\n"
                "Host: t\r\n\r\n");
  EXPECT_EQ(seen.at("prefix"), "10.0.0.0/8");
  EXPECT_EQ(seen.at("vp"), "7");
  EXPECT_EQ(seen.at("flag"), "");
}

// A client that connects and never finishes its request would otherwise
// hold a connection slot forever; the idle sweeper reclaims it.
TEST(Http, StalledRequestIsEvictedByTheIdleTimeout) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  http.set_idle_timeout_ms(80);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  const int fd = raw_client(http.port());
  const char* partial = "GET /metrics HT";  // never completes the request
  for (int i = 0; i < 50 && http.open_connections() == 0; ++i) {
    loop.run_once(2);
    ::send(fd, partial, std::strlen(partial), MSG_NOSIGNAL);
    partial = "";  // only once
  }
  ASSERT_EQ(http.open_connections(), 1u);
  const auto start = loop.now_ms();
  while (loop.now_ms() < start + 500 && http.open_connections() > 0) {
    loop.run_once(5);
  }
  EXPECT_EQ(http.open_connections(), 0u);
  EXPECT_EQ(registry.counter_total("gill_net_http_idle_evictions_total"), 1u);
  ::close(fd);
}

// A chunked-stream reader that stops reading (full socket buffer, endless
// producer) stalls the response; the sweeper drops it instead of letting
// the connection pin producer state forever.
TEST(Http, StalledChunkedReaderIsEvictedByTheIdleTimeout) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  http.set_idle_timeout_ms(80);
  http.route("/stream", [](const HttpRequest&) {
    HttpResponse response;
    response.producer = [](std::string& out) {
      out.assign(16384, 'x');  // endless: only backpressure stops it
      return true;
    };
    return response;
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  const int fd = raw_client(http.port());
  const std::string request = "GET /stream HTTP/1.1\r\nHost: t\r\n\r\n";
  std::size_t sent = 0;
  for (int i = 0; i < 200 && http.open_connections() == 0; ++i) {
    loop.run_once(2);
    if (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
  }
  ASSERT_EQ(http.open_connections(), 1u);
  // Read nothing: the kernel buffers fill, the server's sends stall, and
  // from then on the connection makes no progress until it is evicted.
  const auto start = loop.now_ms();
  while (loop.now_ms() < start + 2000 && http.open_connections() > 0) {
    loop.run_once(5);
  }
  EXPECT_EQ(http.open_connections(), 0u);
  EXPECT_EQ(registry.counter_total("gill_net_http_idle_evictions_total"), 1u);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Acceptance: a live collector end to end — BGP session over TCP feeding
// the Platform, /metrics serving the session's counters live.
// ---------------------------------------------------------------------------

TEST(LiveCollector, SessionCountersAppearOnTheMetricsEndpoint) {
  ServerHarness server;
  HttpEndpoint http(server.loop, &server.registry);
  http.serve_metrics(server.registry);
  http.route("/healthz", [&server] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = collect::to_json(server.platform.health_snapshot());
    return response;
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  TcpFakePeer client(server, 65010);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] {
        return !server.accepted.empty() &&
               server.platform.daemon_of(server.accepted[0]).state() ==
                   SessionState::kEstablished &&
               client.peer.established();
      },
      [&] {
        server.pump();
        client.pump();
      }));
  client.peer.send_synthetic_burst(25, 10u << 24);
  const bgp::VpId vp = server.accepted[0];
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] { return server.platform.daemon_of(vp).rib().size() == 25; },
      [&] {
        server.pump();
        client.pump();
      }));

  const std::string response = http_exchange(
      server.loop, http.port(), "GET /v1/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n"));
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);
  // Live session and platform counters, scraped over the wire.
  EXPECT_NE(body.find("gill_daemon_messages_received_total"),
            std::string::npos);
  EXPECT_NE(body.find("gill_daemon_updates_received_total{vp=\"0\"} 25"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("gill_collector_peers 1"), std::string::npos);
  EXPECT_NE(body.find("gill_net_bytes_read_total"), std::string::npos);

  const std::string healthz = http_exchange(
      server.loop, http.port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(healthz.find("\"peers\":1"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"status\":\"healthy\""), std::string::npos);
  EXPECT_NE(healthz.find("\"session\":\"Established\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Asynchronous analysis off the loop: a refresh job held in flight must not
// stall the TCP sessions — updates keep flowing and the RIB keeps advancing
// until the job completes and the new filter generation is installed.
// ---------------------------------------------------------------------------

TEST(LiveCollector, RibAdvancesWhileARefreshJobIsInFlight) {
  std::promise<void> job_started;
  auto started = job_started.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> armed{true};
  ServerHarness server([&](collect::PlatformConfig& config) {
    config.analysis_threads = 1;
    config.refresh_job_hook = [&, release] {
      if (armed.exchange(false)) {
        job_started.set_value();
        release.wait();
      }
    };
  });
  TcpFakePeer client(server, 65010);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] {
        return !server.accepted.empty() &&
               server.platform.daemon_of(server.accepted[0]).state() ==
                   SessionState::kEstablished &&
               client.peer.established();
      },
      [&] {
        server.pump();
        client.pump();
      }));
  const bgp::VpId vp = server.accepted[0];

  // Seed a first window so the pipeline has data, then pin its job.
  client.peer.send_synthetic_burst(10, 10u << 24);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] { return server.platform.daemon_of(vp).rib().size() == 10; },
      [&] {
        server.pump();
        client.pump();
      }));
  server.platform.refresh_filters(kNow);
  started.wait();  // the worker is inside the pipeline now
  ASSERT_TRUE(server.platform.refresh_in_flight());

  // The loop keeps serving the live session while the job computes: a
  // second burst arrives over TCP and lands in the RIB.
  client.peer.send_synthetic_burst(15, 11u << 24);
  ASSERT_TRUE(drive(
      server.loop, 400,
      [&] { return server.platform.daemon_of(vp).rib().size() == 25; },
      [&] {
        server.pump();
        client.pump();
      }));
  EXPECT_TRUE(server.platform.refresh_in_flight())
      << "the RIB advanced with the job still pinned";
  EXPECT_EQ(server.platform.filter_generation(), 0u);

  release_promise.set_value();
  server.platform.wait_for_refresh();
  EXPECT_FALSE(server.platform.refresh_in_flight());
  EXPECT_EQ(server.platform.filter_generation(), 1u);
  server.pump();  // the session survives the install
  EXPECT_EQ(server.platform.daemon_of(vp).state(),
            SessionState::kEstablished);
}

}  // namespace
}  // namespace gill::net
