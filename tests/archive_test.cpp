// The archive store (DESIGN.md §10): segment format round-trips, wall-clock
// rotation, index-pruned queries, the crash-safety protocol (torn-write
// fault -> recovery seals and truncates, acknowledged records byte-identical)
// and the end-to-end data-retrieval path — loopback BGP peers feeding a
// Platform whose archive serves GET /data as chunked framed MRT.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/bloom.hpp"
#include "archive/retention.hpp"
#include "archive/segment.hpp"
#include "collector/platform.hpp"
#include "net/event_loop.hpp"
#include "net/http_endpoint.hpp"
#include "net/tcp_transport.hpp"
#include "parallel/thread_pool.hpp"

namespace gill::archive {
namespace {

namespace fs = std::filesystem;
using daemon::SessionState;

net::Prefix pfx(const std::string& text) {
  return net::Prefix::parse(text).value();
}

bgp::Update make_update(VpId vp, Timestamp time, const std::string& prefix,
                        std::uint32_t tail_as = 64512) {
  bgp::Update update;
  update.vp = vp;
  update.time = time;
  update.prefix = pfx(prefix);
  update.path = bgp::AsPath{65010, 65020, tail_as};
  update.communities = {bgp::Community(65010, 1)};
  return update;
}

/// A fresh scratch directory under the build tree.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("gill_archive_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> encode(const std::vector<bgp::Update>& updates) {
  mrt::Writer writer;
  for (const auto& update : updates) writer.write_update(update);
  return writer.buffer();
}

// ---------------------------------------------------------------------------
// Segment format: footer round-trip and torn-payload scanning.
// ---------------------------------------------------------------------------

TEST(SegmentFormat, FooterRoundTripsThroughTheFileImage) {
  std::vector<bgp::Update> updates = {
      make_update(3, 1000, "10.0.0.0/24"),
      make_update(1, 1005, "10.0.1.0/24"),
      make_update(3, 1090, "10.0.2.0/24"),
  };
  std::vector<std::uint8_t> file = encode(updates);
  SegmentMeta meta;
  meta.file = "seg-test.mrt";
  meta.payload_bytes = file.size();
  meta.raw_bytes = file.size();
  for (const auto& update : updates) meta.observe(update, false);
  EXPECT_EQ(meta.min_time, 1000u);
  EXPECT_EQ(meta.max_time, 1090u);
  EXPECT_EQ(meta.updates, 3u);
  EXPECT_EQ(meta.vps, (std::vector<VpId>{1, 3}));

  meta.bloom.finalize();  // the v2 footer carries the frozen filter
  append_footer(file, meta);
  auto parsed = read_footer(file);
  ASSERT_TRUE(parsed.has_value());
  parsed->file = meta.file;  // the footer does not carry the filename
  EXPECT_EQ(*parsed, meta);

  // A payload without a footer is not mistaken for a sealed segment.
  EXPECT_FALSE(read_footer(encode(updates)).has_value());
}

TEST(SegmentFormat, ManifestJsonRoundTrips) {
  SegmentMeta a;
  a.file = "seg-0000000900-000001.mrt";
  a.min_time = 930;
  a.max_time = 1170;
  a.updates = 12;
  a.rib_entries = 4;
  a.payload_bytes = 4096;
  a.vps = {0, 2, 9};
  SegmentMeta b;
  b.file = "seg-0000001800-000002.mrt";
  b.min_time = 1800;
  b.max_time = 1810;
  b.updates = 2;
  b.payload_bytes = 128;
  b.vps = {2};
  const auto parsed = manifest_from_json(manifest_to_json({a, b}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (std::vector<SegmentMeta>{a, b}));
  EXPECT_FALSE(manifest_from_json("{not json").has_value());
}

TEST(SegmentFormat, ScanTruncatesAtEveryTornTailBoundary) {
  // Fuzz the torn-write space exhaustively: cut the payload at EVERY byte
  // boundary inside the tail record. The scan must decode exactly the
  // complete records, report the last complete boundary, and never throw
  // or over-read (ASan/UBSan guard the latter under -L sanitize).
  const std::vector<bgp::Update> updates = {
      make_update(1, 900, "10.0.0.0/24"),
      make_update(2, 910, "10.1.0.0/24"),
      make_update(1, 920, "2001:db8::/48"),
  };
  const std::vector<std::uint8_t> payload = encode(updates);
  const std::vector<std::uint8_t> two = encode(
      {updates.begin(), updates.begin() + 2});
  const std::size_t tail_start = two.size();
  for (std::size_t cut = tail_start; cut < payload.size(); ++cut) {
    const auto span = std::span(payload).first(cut);
    const SegmentMeta meta = scan_payload(span);
    EXPECT_EQ(meta.payload_bytes, tail_start) << "cut at " << cut;
    EXPECT_EQ(meta.updates, 2u) << "cut at " << cut;
    EXPECT_EQ(meta.vps, (std::vector<VpId>{1, 2}));
  }
  // The full payload scans clean.
  const SegmentMeta whole = scan_payload(payload);
  EXPECT_EQ(whole.payload_bytes, payload.size());
  EXPECT_EQ(whole.updates, 3u);
}

// ---------------------------------------------------------------------------
// SegmentWriter: wall-clock rotation and the manifest.
// ---------------------------------------------------------------------------

TEST(SegmentWriter, RotatesOnWallClockBoundaries) {
  const std::string dir = scratch_dir("rotate");
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  SegmentWriter writer(config);  // inline I/O: deterministic
  ASSERT_TRUE(writer.open());

  // Three 15-minute windows: [900,1800), [1800,2700), [2700,3600).
  writer.store(make_update(0, 1000, "10.0.0.0/24"));
  writer.store(make_update(1, 1700, "10.0.1.0/24"));
  writer.store(make_update(0, 1800, "10.0.2.0/24"));  // crosses the boundary
  writer.store_rib_entry(make_update(1, 2000, "10.0.1.0/24"));
  writer.tick(2705);  // timer-driven rotation with no new record
  writer.store(make_update(2, 2710, "10.0.3.0/24"));
  writer.close();

  const auto manifest = writer.manifest();
  ASSERT_EQ(manifest.size(), 3u);
  EXPECT_EQ(manifest[0].min_time, 1000u);
  EXPECT_EQ(manifest[0].max_time, 1700u);
  EXPECT_EQ(manifest[0].updates, 2u);
  EXPECT_EQ(manifest[0].vps, (std::vector<VpId>{0, 1}));
  EXPECT_EQ(manifest[1].updates, 1u);
  EXPECT_EQ(manifest[1].rib_entries, 1u);
  EXPECT_EQ(manifest[2].min_time, 2710u);
  EXPECT_EQ(manifest[2].vps, (std::vector<VpId>{2}));
  EXPECT_EQ(writer.segments_sealed(), 3u);
  EXPECT_EQ(writer.records_appended(), 5u);

  // Every sealed file exists, parses, and the active artifact is gone.
  for (const auto& meta : manifest) {
    const auto file = read_file((fs::path(dir) / meta.file).string());
    ASSERT_TRUE(file.has_value()) << meta.file;
    auto footer = read_footer(*file);
    ASSERT_TRUE(footer.has_value()) << meta.file;
    footer->file = meta.file;  // the footer does not carry the filename
    EXPECT_EQ(*footer, meta);
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / kActiveSegmentName));

  // A reader sees the same manifest.
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  EXPECT_EQ(reader.segments(), manifest);
}

TEST(SegmentWriter, AsyncPoolWriterMatchesInlineResult) {
  metrics::Registry registry;
  par::ThreadPool pool(2, &registry);
  const std::string dir = scratch_dir("async");
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.flush_bytes = 64;  // many small async appends
  config.pool = &pool;
  config.registry = &registry;
  SegmentWriter writer(config);
  ASSERT_TRUE(writer.open());
  std::vector<bgp::Update> sent;
  for (int i = 0; i < 200; ++i) {
    auto update = make_update(static_cast<VpId>(i % 5),
                              static_cast<Timestamp>(1000 + i * 20),
                              "10.2." + std::to_string(i % 250) + ".0/24");
    writer.store(update);
    sent.push_back(std::move(update));
  }
  writer.close();  // rotate + wait_idle: all I/O jobs drained
  EXPECT_FALSE(writer.failed());
  EXPECT_GE(writer.segments_sealed(), 4u);  // 200 * 20s spans >= 4 windows

  // The byte stream on disk is the exact append-order encoding: jobs were
  // serialized even though the pool has two workers.
  ArchiveReader reader(&registry);
  ASSERT_TRUE(reader.open(dir));
  QueryCursor cursor = reader.query({});
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const std::vector<std::uint8_t> expected = encode(sent);
  ASSERT_EQ(streamed.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(streamed.data(), expected.data(),
                           expected.size()));
  EXPECT_GT(registry.counter_total("gill_archive_segments_written_total"), 0u);
  EXPECT_GT(registry.counter_total("gill_archive_bytes_written_total"), 0u);
}

// ---------------------------------------------------------------------------
// ArchiveReader: index pruning and per-record filters.
// ---------------------------------------------------------------------------

struct QueryFixture : ::testing::Test {
  std::string dir = scratch_dir("query");

  void SetUp() override {
    SegmentWriterConfig config;
    config.directory = dir;
    config.rotate_secs = 900;
    SegmentWriter writer(config);
    ASSERT_TRUE(writer.open());
    writer.store(make_update(0, 1000, "10.0.0.0/24"));
    writer.store(make_update(1, 1100, "10.1.0.0/24"));
    writer.store(make_update(0, 1900, "10.0.128.0/25"));
    writer.store(make_update(2, 2000, "192.168.0.0/16"));
    writer.store(make_update(1, 2800, "2001:db8::/48"));
    writer.close();
  }
};

TEST_F(QueryFixture, TimeWindowIsHalfOpenAndPrunesSegments) {
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  ASSERT_EQ(reader.segments().size(), 3u);

  QueryOptions options;
  options.start = 1100;
  options.end = 2000;  // excludes the t=2000 record
  const auto records = reader.query_all(options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].update.time, 1100u);
  EXPECT_EQ(records[1].update.time, 1900u);
}

TEST_F(QueryFixture, VpFilterUsesTheSegmentIndex) {
  metrics::Registry registry;
  ArchiveReader reader(&registry);
  ASSERT_TRUE(reader.open(dir));
  QueryOptions options;
  options.vp = 2;
  const auto records = reader.query_all(options);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].update.prefix, pfx("192.168.0.0/16"));
  // Only the one matching record crossed the stream counter: segments
  // whose VP set excludes vp=2 were pruned without being decoded.
  EXPECT_EQ(registry.counter_total("gill_archive_records_streamed_total"), 1u);
  EXPECT_EQ(registry.counter_total("gill_archive_queries_served_total"), 1u);
}

TEST_F(QueryFixture, PrefixFilterMatchesEqualOrMoreSpecific) {
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  QueryOptions options;
  options.prefix = pfx("10.0.0.0/16");
  const auto records = reader.query_all(options);
  // 10.0.0.0/24 and 10.0.128.0/25 are inside 10.0.0.0/16; 10.1.0.0/24,
  // 192.168.0.0/16 and the v6 prefix are not.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].update.prefix, pfx("10.0.0.0/24"));
  EXPECT_EQ(records[1].update.prefix, pfx("10.0.128.0/25"));

  QueryOptions v6;
  v6.prefix = pfx("2001:db8::/32");
  const auto v6_records = reader.query_all(v6);
  ASSERT_EQ(v6_records.size(), 1u);
  EXPECT_EQ(v6_records[0].update.prefix, pfx("2001:db8::/48"));
}

TEST_F(QueryFixture, SegmentsJsonListsTheManifest) {
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  const auto parsed = manifest_from_json(reader.segments_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, reader.segments());
}

// ---------------------------------------------------------------------------
// Crash safety: the torn-write fault kills the writer mid-segment; reopening
// the store recovers, truncates the torn tail and serves every acknowledged
// record byte-identically.
// ---------------------------------------------------------------------------

TEST(CrashSafety, RecoveryAfterTornWriteServesAcknowledgedRecords) {
  const std::string dir = scratch_dir("crash");
  std::vector<bgp::Update> acknowledged;
  {
    SegmentWriterConfig config;
    config.directory = dir;
    config.rotate_secs = 900;
    SegmentWriter writer(config);
    ASSERT_TRUE(writer.open());
    // One sealed segment, then a half-written active segment.
    writer.store(make_update(0, 1000, "10.0.0.0/24"));
    writer.store(make_update(1, 1100, "10.0.1.0/24"));
    writer.store(make_update(0, 1900, "10.0.2.0/24"));  // seals window 1
    acknowledged.push_back(make_update(0, 1000, "10.0.0.0/24"));
    acknowledged.push_back(make_update(1, 1100, "10.0.1.0/24"));
    // These two are flushed (write + fsync completed): acknowledged.
    writer.store(make_update(2, 1950, "10.0.3.0/24"));
    writer.flush();
    acknowledged.push_back(make_update(0, 1900, "10.0.2.0/24"));
    acknowledged.push_back(make_update(2, 1950, "10.0.3.0/24"));
    // The crash: the next append writes only 7 bytes of its chunk (a torn
    // record), skips the fsync and the writer dies — as if the process
    // was killed inside write(). Nothing after this is acknowledged.
    writer.fault_torn_write(7);
    writer.store(make_update(1, 2000, "10.0.4.0/24"));
    writer.flush();
    EXPECT_TRUE(writer.failed());
    // Later appends on a dead writer are dropped, not crashes.
    writer.store(make_update(1, 2100, "10.0.5.0/24"));
  }
  // The store now holds one sealed segment, a torn current.part and a
  // manifest that predates the crash.
  ASSERT_TRUE(fs::exists(fs::path(dir) / kActiveSegmentName));

  // Reopen: a new writer's open() runs the recovery scan.
  metrics::Registry registry;
  SegmentWriterConfig config;
  config.directory = dir;
  config.registry = &registry;
  SegmentWriter reopened(config);
  ASSERT_TRUE(reopened.open());
  EXPECT_FALSE(fs::exists(fs::path(dir) / kActiveSegmentName));
  EXPECT_EQ(registry.counter_total("gill_archive_recovered_segments_total"),
            1u);
  EXPECT_EQ(registry.counter_total("gill_archive_truncated_bytes_total"), 7u);

  // Every acknowledged record comes back byte-identically; the torn tail
  // is gone.
  ArchiveReader reader(&registry);
  ASSERT_TRUE(reader.open(dir));
  ASSERT_EQ(reader.segments().size(), 2u);
  QueryCursor cursor = reader.query({});
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const std::vector<std::uint8_t> expected = encode(acknowledged);
  ASSERT_EQ(streamed.size(), expected.size());
  EXPECT_EQ(0,
            std::memcmp(streamed.data(), expected.data(), expected.size()));

  // Recovery is idempotent: a second open changes nothing.
  const auto before = load_manifest(dir);
  const auto again = recover_store(dir);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->recovered_segments, 0u);
  EXPECT_EQ(load_manifest(dir), before);
}

TEST(CrashSafety, RecoverySealsEveryTornTailLength) {
  // Drive the recovery scan across every torn-tail length of the final
  // record: whatever prefix of the tail record hits the disk, reopening
  // yields exactly the two complete records.
  const std::vector<bgp::Update> updates = {
      make_update(0, 1000, "10.0.0.0/24"),
      make_update(1, 1050, "10.0.1.0/24"),
      make_update(2, 1090, "10.0.2.0/24"),
  };
  const std::vector<std::uint8_t> payload = encode(updates);
  const std::size_t tail_start =
      encode({updates.begin(), updates.begin() + 2}).size();
  const std::vector<std::uint8_t> complete = encode(
      {updates.begin(), updates.begin() + 2});
  for (std::size_t cut = tail_start + 1; cut < payload.size(); ++cut) {
    const std::string dir =
        scratch_dir("torn_" + std::to_string(cut));
    ASSERT_TRUE(write_file_atomic(
        (fs::path(dir) / kActiveSegmentName).string(),
        std::span(payload).first(cut)));
    const auto result = recover_store(dir);
    ASSERT_TRUE(result.has_value()) << "cut at " << cut;
    EXPECT_EQ(result->recovered_segments, 1u);
    EXPECT_EQ(result->truncated_bytes, cut - tail_start);
    ArchiveReader reader;
    ASSERT_TRUE(reader.open(dir));
    QueryCursor cursor = reader.query({});
    std::string streamed;
    while (cursor.next_chunk(streamed)) {
    }
    ASSERT_EQ(streamed.size(), complete.size()) << "cut at " << cut;
    EXPECT_EQ(0, std::memcmp(streamed.data(), complete.data(),
                             complete.size()));
    fs::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// End to end: loopback BGP peers -> Platform with an archive -> rotation ->
// GET /data returns exactly one VP's window, decodable by the MRT reader.
// ---------------------------------------------------------------------------

/// De-chunks a Transfer-Encoding: chunked HTTP body.
std::string dechunk(const std::string& body) {
  std::string out;
  std::size_t at = 0;
  for (;;) {
    const std::size_t line_end = body.find("\r\n", at);
    if (line_end == std::string::npos) break;
    const std::size_t size =
        std::stoul(body.substr(at, line_end - at), nullptr, 16);
    if (size == 0) break;
    out += body.substr(line_end + 2, size);
    at = line_end + 2 + size + 2;  // skip data + trailing CRLF
  }
  return out;
}

TEST(EndToEnd, DataEndpointServesOneVpsWindowAsFramedMrt) {
  net::EventLoop loop;
  metrics::Registry registry;
  collect::PlatformConfig platform_config;
  platform_config.registry = &registry;
  collect::Platform platform(platform_config);

  const std::string dir = scratch_dir("e2e");
  SegmentWriterConfig archive_config;
  archive_config.directory = dir;
  archive_config.rotate_secs = 900;
  archive_config.registry = &registry;
  SegmentWriter writer(archive_config);
  ASSERT_TRUE(writer.open());
  platform.set_archive(&writer);

  // The collectord accept path.
  std::map<bgp::VpId, net::TcpTransport*> transports;
  std::vector<bgp::VpId> accepted;
  net::TcpListener listener(loop, &registry);
  ASSERT_TRUE(listener.listen(
      "127.0.0.1", 0, [&](int fd, std::string, std::uint16_t) {
        auto transport = std::make_unique<net::TcpTransport>(
            loop, net::Role::kDaemonSide, &registry);
        auto* raw = transport.get();
        transport->adopt(fd);
        const bgp::VpId vp =
            platform.add_remote_peer(0, 1000, std::move(transport));
        transports[vp] = raw;
        accepted.push_back(vp);
      }));

  // The collectord HTTP plane, including the /data streaming route.
  net::HttpEndpoint http(loop, &registry);
  http.route("/data", [&registry, dir](const net::HttpRequest& request) {
    QueryOptions options;
    if (const auto* start = request.get("start")) {
      options.start = std::stoul(*start);
    }
    if (const auto* end = request.get("end")) options.end = std::stoul(*end);
    if (const auto* vp = request.get("vp")) {
      options.vp = static_cast<VpId>(std::stoul(*vp));
    }
    auto reader = std::make_shared<ArchiveReader>(&registry);
    EXPECT_TRUE(reader->open(dir));
    auto cursor = std::make_shared<QueryCursor>(reader->query(options));
    net::HttpResponse response;
    response.content_type = "application/octet-stream";
    response.producer = [reader, cursor](std::string& out) {
      return cursor->next_chunk(out);
    };
    return response;
  });
  http.route("/segments", [&registry, dir](const net::HttpRequest&) {
    ArchiveReader reader(&registry);
    EXPECT_TRUE(reader.open(dir));
    net::HttpResponse response;
    response.content_type = "application/json";
    response.body = reader.segments_json();
    return response;
  });
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  // Two routers peer in over real sockets.
  bgp::Timestamp now = 1000;
  const auto pump = [&] {
    platform.step(now);
    for (auto& [vp, transport] : transports) transport->sync();
    writer.tick(now);
  };
  struct Client {
    net::TcpTransport transport;
    daemon::FakePeer peer;
    Client(net::EventLoop& loop, metrics::Registry& registry,
           bgp::AsNumber as, std::uint16_t port)
        : transport(loop, net::Role::kPeerSide, &registry),
          peer(as, transport) {
      EXPECT_TRUE(transport.dial("127.0.0.1", port));
    }
  };
  Client alpha(loop, registry, 65010, listener.port());
  Client beta(loop, registry, 65020, listener.port());
  const auto drive = [&](auto done, int iterations = 600) {
    for (int i = 0; i < iterations; ++i) {
      loop.run_once(2);
      pump();
      alpha.peer.poll();
      alpha.transport.sync();
      beta.peer.poll();
      beta.transport.sync();
      if (done()) return true;
    }
    return done();
  };
  ASSERT_TRUE(drive([&] {
    return accepted.size() == 2 && alpha.peer.established() &&
           beta.peer.established();
  }));
  // Resolve which accepted VP is alpha's while the sessions are live (a
  // later hold-timer expiry resets the daemons' learned peer AS).
  const bgp::VpId alpha_vp =
      platform.daemon_of(accepted[0]).peer_as() == 65010 ? accepted[0]
                                                         : accepted[1];
  ASSERT_EQ(platform.daemon_of(alpha_vp).peer_as(), 65010u);

  // Each router announces a distinct block, stamped inside [900, 1800).
  for (int i = 0; i < 8; ++i) {
    alpha.peer.send_update(
        make_update(0, 0, "10.10." + std::to_string(i) + ".0/24"));
    beta.peer.send_update(
        make_update(0, 0, "10.20." + std::to_string(i) + ".0/24"));
  }
  ASSERT_TRUE(drive([&] { return writer.records_appended() == 16; }));

  // The wall clock crosses the boundary: the window seals.
  now = 1805;
  ASSERT_TRUE(drive([&] { return writer.segments_sealed() == 1; }));

  // Fetch one VP's window over HTTP and decode it with the MRT reader.
  const std::string request = "GET /data?vp=" + std::to_string(alpha_vp) +
                              "&start=900&end=1800 HTTP/1.1\r\n"
                              "Host: t\r\n\r\n";
  std::string response;
  {
    // http_exchange inline (the net_test helper lives in another TU).
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(http.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    std::size_t sent = 0;
    bool closed = false;
    for (int i = 0; i < 3000 && !closed; ++i) {
      loop.run_once(1);
      if (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) sent += static_cast<std::size_t>(n);
      }
      char buffer[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n > 0) {
          response.append(buffer, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) closed = true;
        break;
      }
    }
    ::close(fd);
  }
  ASSERT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n")) << response;
  ASSERT_NE(response.find("Transfer-Encoding: chunked\r\n"),
            std::string::npos);
  const std::string body = dechunk(
      response.substr(response.find("\r\n\r\n") + 4));

  mrt::Reader mrt_reader(
      std::span(reinterpret_cast<const std::uint8_t*>(body.data()),
                body.size()));
  std::vector<bgp::Update> fetched;
  while (auto record = mrt_reader.next()) fetched.push_back(record->update);
  EXPECT_TRUE(mrt_reader.ok());
  // Exactly alpha's eight announcements, within the window, nothing from
  // beta's VP.
  ASSERT_EQ(fetched.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto& update = fetched[static_cast<std::size_t>(i)];
    EXPECT_EQ(update.vp, alpha_vp);
    EXPECT_GE(update.time, 900u);
    EXPECT_LT(update.time, 1800u);
    EXPECT_EQ(update.prefix, pfx("10.10." + std::to_string(i) + ".0/24"));
  }
}

// ---------------------------------------------------------------------------
// Operational degradation: a full disk drops data, never the collector.
// ---------------------------------------------------------------------------

TEST(SegmentWriter, EnospcDegradesToCountedDropsAndStaysAlive) {
  const std::string dir = scratch_dir("enospc");
  metrics::Registry registry;
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.flush_bytes = 1;  // every record hits the disk path immediately
  config.registry = &registry;
  SegmentWriter writer(config);  // inline I/O: deterministic
  ASSERT_TRUE(writer.open());

  writer.store(make_update(0, 1000, "10.0.0.0/24"));
  ASSERT_EQ(writer.enospc_events(), 0u);

  // The disk fills for exactly one append: that chunk is dropped and
  // counted, the writer does NOT die (contrast fault_torn_write).
  writer.fault_enospc();
  writer.store(make_update(0, 1010, "10.0.1.0/24"));
  EXPECT_EQ(writer.enospc_events(), 1u);
  EXPECT_FALSE(writer.failed());

  // The operator freed space: collection resumes without intervention.
  writer.store(make_update(0, 1020, "10.0.2.0/24"));
  writer.close();
  EXPECT_FALSE(writer.failed());
  EXPECT_EQ(writer.enospc_events(), 1u);
  EXPECT_EQ(registry.counter_total("gill_archive_enospc_events_total"), 1u);
  EXPECT_GT(
      registry.counter_total("gill_archive_enospc_dropped_bytes_total"), 0u);

  // The window still sealed into a real, footered segment on disk.
  const auto manifest = writer.manifest();
  ASSERT_EQ(manifest.size(), 1u);
  const auto file = read_file((fs::path(dir) / manifest[0].file).string());
  ASSERT_TRUE(file.has_value());
  EXPECT_TRUE(read_footer(*file).has_value());
}

// ---------------------------------------------------------------------------
// PrefixBloom: ancestor-insertion semantics and serialization round-trips.
// ---------------------------------------------------------------------------

TEST(PrefixBloom, AncestorKeysAnswerEqualOrMoreSpecific) {
  PrefixBloom bloom;
  bloom.observe(pfx("10.0.0.0/24"));
  bloom.observe(pfx("2001:db8:1::/48"));
  bloom.finalize();
  ASSERT_FALSE(bloom.empty());
  // The record prefix itself and every less-specific ancestor must match:
  // a query at any of those lengths covers the stored record.
  EXPECT_TRUE(bloom.may_cover(pfx("10.0.0.0/24")));
  EXPECT_TRUE(bloom.may_cover(pfx("10.0.0.0/16")));
  EXPECT_TRUE(bloom.may_cover(pfx("10.0.0.0/8")));
  EXPECT_TRUE(bloom.may_cover(pfx("0.0.0.0/0")));
  EXPECT_TRUE(bloom.may_cover(pfx("2001:db8::/32")));
  EXPECT_TRUE(bloom.may_cover(pfx("2001:db8:1::/48")));
  // Disjoint space prunes, and so does a query MORE specific than the
  // stored record (10.0.0.0/25 does not cover the stored /24). These are
  // deterministic given the fixed hash function.
  EXPECT_FALSE(bloom.may_cover(pfx("192.168.0.0/16")));
  EXPECT_FALSE(bloom.may_cover(pfx("10.0.0.0/25")));
  EXPECT_FALSE(bloom.may_cover(pfx("2001:db9::/32")));
}

TEST(PrefixBloom, EmptyFilterIsMatchAll) {
  PrefixBloom bloom;  // never observed, never finalized: a v1 segment
  EXPECT_TRUE(bloom.empty());
  EXPECT_TRUE(bloom.may_cover(pfx("10.0.0.0/8")));
  EXPECT_TRUE(bloom.may_cover(pfx("2001:db8::/32")));
  bloom.finalize();  // observe-less finalize stays match-all
  EXPECT_TRUE(bloom.empty());
  EXPECT_TRUE(bloom.may_cover(pfx("192.168.0.0/24")));
}

TEST(PrefixBloom, SerializeAndHexFormsRoundTrip) {
  PrefixBloom bloom;
  for (int i = 0; i < 64; ++i) {
    bloom.observe(pfx("10." + std::to_string(i) + ".0.0/16"));
  }
  bloom.finalize();
  std::vector<std::uint8_t> bytes;
  bloom.serialize(bytes);
  std::size_t at = 0;
  const auto binary = PrefixBloom::deserialize(bytes, at);
  ASSERT_TRUE(binary.has_value());
  EXPECT_EQ(at, bytes.size());
  EXPECT_EQ(*binary, bloom);
  const auto hex = PrefixBloom::from_hex(bloom.to_hex(), bloom.hashes());
  ASSERT_TRUE(hex.has_value());
  EXPECT_EQ(*hex, bloom);
}

// ---------------------------------------------------------------------------
// Footer/manifest versioning: v1 segments keep opening, mixed directories
// serve, and prefix queries fall back to scan-all where no bloom exists.
// ---------------------------------------------------------------------------

TEST(SegmentFormat, V1FooterOpensAsRawWithMatchAllBloom) {
  const std::vector<bgp::Update> updates = {
      make_update(0, 1000, "10.0.0.0/24"),
      make_update(1, 1100, "10.1.0.0/24"),
  };
  std::vector<std::uint8_t> file = encode(updates);
  SegmentMeta meta;
  meta.payload_bytes = file.size();
  for (const auto& update : updates) meta.observe(update, false);
  append_footer_v1(file, meta);
  const auto parsed = read_footer(file);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->codec, kCodecNone);
  EXPECT_EQ(parsed->raw_bytes, parsed->payload_bytes);
  EXPECT_TRUE(parsed->bloom.empty());
  EXPECT_EQ(parsed->min_time, 1000u);
  EXPECT_EQ(parsed->updates, 2u);
  EXPECT_EQ(parsed->vps, (std::vector<VpId>{0, 1}));
}

TEST(MixedVersions, V1AndV2SegmentsServeFromOneDirectory) {
  const std::string dir = scratch_dir("mixed");
  // Fabricate a pre-v2 store: one sealed segment with a v1 footer and no
  // manifest row — exactly what a directory written before the format bump
  // looks like after a crash-between-rename-and-manifest.
  const std::vector<bgp::Update> old_updates = {
      make_update(0, 1000, "10.0.0.0/24"),
      make_update(1, 1100, "172.16.0.0/24"),
  };
  std::vector<std::uint8_t> v1_file = encode(old_updates);
  SegmentMeta v1_meta;
  v1_meta.payload_bytes = v1_file.size();
  for (const auto& update : old_updates) v1_meta.observe(update, false);
  append_footer_v1(v1_file, v1_meta);
  ASSERT_TRUE(write_file_atomic(
      (fs::path(dir) / segment_file_name(900, 1)).string(), v1_file));

  // A current writer adopts the v1 segment and seals a v2 one next to it.
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.compress = compression_available();
  SegmentWriter writer(config);
  ASSERT_TRUE(writer.open());
  writer.store(make_update(2, 2000, "10.0.5.0/24"));
  writer.store(make_update(2, 2100, "192.168.1.0/24"));
  writer.close();

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  ASSERT_EQ(reader.segments().size(), 2u);
  EXPECT_EQ(reader.segments()[0].codec, kCodecNone);
  EXPECT_TRUE(reader.segments()[0].bloom.empty());
  EXPECT_FALSE(reader.segments()[1].bloom.empty());

  // A prefix query crosses both: the v1 segment has no bloom and falls
  // back to scan-all (its matching record is found), the v2 segment is
  // answered through its bloom.
  QueryOptions options;
  options.prefix = pfx("10.0.0.0/8");
  const auto records = reader.query_all(options);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].update.prefix, pfx("10.0.0.0/24"));
  EXPECT_EQ(records[1].update.prefix, pfx("10.0.5.0/24"));
}

// ---------------------------------------------------------------------------
// Compression: sealed payloads round-trip byte-identically and the crash
// protocol is untouched (the active file is always raw).
// ---------------------------------------------------------------------------

TEST(Compression, CompressedSealRoundTripsByteIdentically) {
  if (!compression_available()) GTEST_SKIP() << "build lacks zstd";
  const std::string dir = scratch_dir("zstd");
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.compress = true;
  SegmentWriter writer(config);
  ASSERT_TRUE(writer.open());
  std::vector<bgp::Update> sent;
  for (int i = 0; i < 120; ++i) {
    auto update = make_update(static_cast<VpId>(i % 4),
                              static_cast<Timestamp>(1000 + i * 30),
                              "10.3." + std::to_string(i % 200) + ".0/24");
    writer.store(update);
    sent.push_back(std::move(update));
  }
  writer.close();
  EXPECT_FALSE(writer.failed());

  const auto manifest = writer.manifest();
  ASSERT_GE(manifest.size(), 3u);
  for (const auto& meta : manifest) {
    EXPECT_EQ(meta.codec, kCodecZstd) << meta.file;
    EXPECT_GT(meta.raw_bytes, 0u);
    // The footer's payload size is the on-disk (compressed) size.
    const auto file = read_file((fs::path(dir) / meta.file).string());
    ASSERT_TRUE(file.has_value()) << meta.file;
    const auto footer = read_footer(*file);
    ASSERT_TRUE(footer.has_value()) << meta.file;
    EXPECT_EQ(footer->payload_bytes, meta.payload_bytes);
    EXPECT_EQ(footer->raw_bytes, meta.raw_bytes);
    EXPECT_LT(meta.payload_bytes, meta.raw_bytes);  // MRT framing compresses
  }

  // The stream a reader serves is byte-identical to the raw append order —
  // compression is invisible to consumers.
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  QueryCursor cursor = reader.query({});
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const std::vector<std::uint8_t> expected = encode(sent);
  ASSERT_EQ(streamed.size(), expected.size());
  EXPECT_EQ(0,
            std::memcmp(streamed.data(), expected.data(), expected.size()));
}

TEST(Compression, TornTailRecoveryStillWorksWithCompressionOn) {
  if (!compression_available()) GTEST_SKIP() << "build lacks zstd";
  const std::string dir = scratch_dir("zstd_crash");
  std::vector<bgp::Update> acknowledged;
  {
    SegmentWriterConfig config;
    config.directory = dir;
    config.rotate_secs = 900;
    config.compress = true;
    SegmentWriter writer(config);
    ASSERT_TRUE(writer.open());
    writer.store(make_update(0, 1000, "10.0.0.0/24"));
    writer.store(make_update(0, 1900, "10.0.1.0/24"));  // seals window 1
    acknowledged.push_back(make_update(0, 1000, "10.0.0.0/24"));
    writer.flush();
    acknowledged.push_back(make_update(0, 1900, "10.0.1.0/24"));
    writer.fault_torn_write(7);
    writer.store(make_update(1, 2000, "10.0.2.0/24"));
    writer.flush();
    EXPECT_TRUE(writer.failed());
  }
  // The crash artifact is RAW framed MRT even though the store compresses:
  // recovery's scan_payload applies unchanged.
  ASSERT_TRUE(fs::exists(fs::path(dir) / kActiveSegmentName));
  SegmentWriterConfig config;
  config.directory = dir;
  config.compress = true;
  SegmentWriter reopened(config);
  ASSERT_TRUE(reopened.open());
  EXPECT_FALSE(fs::exists(fs::path(dir) / kActiveSegmentName));

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  ASSERT_EQ(reader.segments().size(), 2u);
  EXPECT_EQ(reader.segments()[0].codec, kCodecZstd);   // sealed pre-crash
  EXPECT_EQ(reader.segments()[1].codec, kCodecNone);   // recovery seals raw
  QueryCursor cursor = reader.query({});
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const std::vector<std::uint8_t> expected = encode(acknowledged);
  ASSERT_EQ(streamed.size(), expected.size());
  EXPECT_EQ(0,
            std::memcmp(streamed.data(), expected.data(), expected.size()));
}

// ---------------------------------------------------------------------------
// Retention/GC: policy selection, crash-safe deletion, pin protocol.
// ---------------------------------------------------------------------------

SegmentMeta fake_meta(const std::string& file, Timestamp min_time,
                      Timestamp max_time, std::uint64_t bytes) {
  SegmentMeta meta;
  meta.file = file;
  meta.min_time = min_time;
  meta.max_time = max_time;
  meta.payload_bytes = bytes;
  meta.raw_bytes = bytes;
  return meta;
}

TEST(Retention, SelectExpiredByAgeThenByteBudget) {
  const std::vector<SegmentMeta> manifest = {
      fake_meta("a", 900, 1790, 100),
      fake_meta("b", 1800, 2690, 100),
      fake_meta("c", 2700, 3590, 100),
      fake_meta("d", 3600, 4490, 100),
  };
  RetentionPolicy age_only;
  age_only.max_age_secs = 1000;
  // now=3700: horizon 2700 — windows whose newest record predates it go.
  EXPECT_EQ(select_expired(manifest, age_only, 3700),
            (std::vector<std::size_t>{0, 1}));

  RetentionPolicy bytes_only;
  bytes_only.max_bytes = 250;  // 400 bytes stored: shed oldest until <= 250
  EXPECT_EQ(select_expired(manifest, bytes_only, 5000),
            (std::vector<std::size_t>{0, 1}));

  RetentionPolicy both;
  both.max_age_secs = 1000;
  both.max_bytes = 150;  // age kills {0,1}; budget then sheds 2 as well
  EXPECT_EQ(select_expired(manifest, both, 3700),
            (std::vector<std::size_t>{0, 1, 2}));

  EXPECT_TRUE(select_expired(manifest, RetentionPolicy{}, 9999).empty());
}

TEST(Retention, GcDeletesOldestFirstAndManifestStaysConsistent) {
  const std::string dir = scratch_dir("gc");
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  SegmentWriter writer(config);
  ASSERT_TRUE(writer.open());
  for (int w = 0; w < 3; ++w) {
    writer.store(make_update(0, static_cast<Timestamp>(1000 + w * 900),
                             "10.0." + std::to_string(w) + ".0/24"));
  }
  writer.close();
  auto manifest = writer.manifest();
  ASSERT_EQ(manifest.size(), 3u);

  RetentionPolicy policy;
  policy.max_age_secs = 900;
  const auto result =
      run_gc(dir, manifest, policy, nullptr, /*now=*/manifest[1].max_time +
                                                 policy.max_age_secs + 1);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->deleted_files.size(), 2u);
  EXPECT_EQ(result->deleted_files[0], manifest[0].file);
  EXPECT_EQ(result->deleted_files[1], manifest[1].file);
  EXPECT_GT(result->deleted_bytes, 0u);
  ASSERT_EQ(result->remaining.size(), 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / manifest[0].file));
  EXPECT_FALSE(fs::exists(fs::path(dir) / manifest[1].file));
  EXPECT_TRUE(fs::exists(fs::path(dir) / manifest[2].file));
  // The on-disk manifest and a fresh load agree with the pass's result.
  EXPECT_EQ(load_manifest(dir), result->remaining);
  // The survivor still serves.
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(dir));
  EXPECT_EQ(reader.query_all({}).size(), 1u);
}

TEST(Retention, GcSparesPinnedSegmentsUntilUnpinned) {
  const std::string dir = scratch_dir("gc_pins");
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  SegmentWriter writer(config);
  ASSERT_TRUE(writer.open());
  writer.store(make_update(0, 1000, "10.0.0.0/24"));
  writer.store(make_update(0, 1900, "10.0.1.0/24"));
  writer.close();
  const auto manifest = writer.manifest();
  ASSERT_EQ(manifest.size(), 2u);

  SegmentPins pins;
  pins.pin({manifest[0].file});  // a live cursor holds the oldest window
  RetentionPolicy policy;
  policy.max_age_secs = 1;
  auto result = run_gc(dir, manifest, policy, &pins, /*now=*/100000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->skipped_pinned, 1u);
  ASSERT_EQ(result->deleted_files.size(), 1u);
  EXPECT_EQ(result->deleted_files[0], manifest[1].file);
  EXPECT_TRUE(fs::exists(fs::path(dir) / manifest[0].file));
  // The spared window stayed in the manifest: a later pass sees it again.
  ASSERT_EQ(result->remaining.size(), 1u);
  EXPECT_EQ(result->remaining[0].file, manifest[0].file);

  pins.unpin({manifest[0].file});
  EXPECT_EQ(pins.pinned_count(), 0u);
  result = run_gc(dir, load_manifest(dir), policy, &pins, /*now=*/100000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->skipped_pinned, 0u);
  ASSERT_EQ(result->deleted_files.size(), 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / manifest[0].file));
  EXPECT_TRUE(result->remaining.empty());
}

TEST(Retention, WriterRetentionJobUpdatesManifestAndGeneration) {
  const std::string dir = scratch_dir("gc_writer");
  metrics::Registry registry;
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.registry = &registry;
  SegmentWriter writer(config);  // inline jobs: deterministic
  ASSERT_TRUE(writer.open());
  for (int w = 0; w < 3; ++w) {
    writer.store(make_update(0, static_cast<Timestamp>(1000 + w * 900),
                             "10.0." + std::to_string(w) + ".0/24"));
  }
  writer.rotate_now();
  const std::uint64_t generation = writer.manifest_generation();
  EXPECT_EQ(generation, 3u);  // one bump per seal

  std::vector<std::string> invalidated;
  RetentionPolicy policy;
  policy.max_bytes = 1;  // condemn every window
  writer.run_retention(policy, nullptr, /*now=*/100000,
                       [&](const std::string& file) {
                         invalidated.push_back(file);
                       });
  EXPECT_EQ(writer.manifest_generation(), generation + 1);
  EXPECT_TRUE(writer.manifest().empty());
  EXPECT_EQ(invalidated.size(), 3u);
  EXPECT_EQ(registry.counter_total("gill_archive_gc_deleted_segments_total"),
            3u);
  EXPECT_TRUE(load_manifest(dir).empty());
  // A disabled policy is a no-op, not a delete-everything.
  writer.run_retention(RetentionPolicy{}, nullptr, 100000);
  EXPECT_EQ(writer.manifest_generation(), generation + 1);
  writer.close();
}

}  // namespace
}  // namespace gill::archive
