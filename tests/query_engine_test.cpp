// The archive query engine (DESIGN.md §15): bloom-pruned parallel segment
// scans merged back in manifest order (byte-identical to the serial reader
// at every thread count, with and without compression), the hot-segment
// LRU cache (hits require zero disk reads; eviction respects the byte
// budget), cursor pinning against GC, and the churn soak — concurrent
// clients racing rotation, sealing and retention with a quiesced
// byte-identity check at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/query_engine.hpp"
#include "archive/retention.hpp"
#include "archive/segment_cache.hpp"
#include "parallel/thread_pool.hpp"

namespace gill::archive {
namespace {

namespace fs = std::filesystem;

net::Prefix pfx(const std::string& text) {
  return net::Prefix::parse(text).value();
}

bgp::Update make_update(VpId vp, Timestamp time, const std::string& prefix) {
  bgp::Update update;
  update.vp = vp;
  update.time = time;
  update.prefix = pfx(prefix);
  update.path = bgp::AsPath{65010, 65020, 64512};
  update.communities = {bgp::Community(65010, 1)};
  return update;
}

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("gill_qe_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Builds a store of `windows` sealed 900-second windows, each holding
/// `per_window` updates over a window-specific prefix block (10.<w>.x.0/24)
/// plus a shared block (172.16.x.0/24), VPs cycling 0..3.
std::vector<bgp::Update> build_store(const std::string& dir, bool compress,
                                     int windows = 6, int per_window = 20) {
  SegmentWriterConfig config;
  config.directory = dir;
  config.rotate_secs = 900;
  config.compress = compress;
  SegmentWriter writer(config);
  EXPECT_TRUE(writer.open());
  std::vector<bgp::Update> sent;
  for (int w = 0; w < windows; ++w) {
    for (int i = 0; i < per_window; ++i) {
      const auto time =
          static_cast<Timestamp>(900 + w * 900 + i * (880 / per_window));
      const std::string prefix =
          i % 4 == 3 ? "172.16." + std::to_string(i) + ".0/24"
                     : "10." + std::to_string(w) + "." + std::to_string(i) +
                           ".0/24";
      auto update = make_update(static_cast<VpId>(i % 4), time, prefix);
      writer.store(update);
      sent.push_back(std::move(update));
    }
  }
  writer.close();
  EXPECT_FALSE(writer.failed());
  return sent;
}

/// The serial baseline: ArchiveReader's single-threaded cursor.
std::string serial_bytes(const std::string& dir, const QueryOptions& options) {
  ArchiveReader reader;
  EXPECT_TRUE(reader.open(dir));
  QueryCursor cursor = reader.query(options);
  std::string out;
  while (cursor.next_chunk(out)) {
  }
  return out;
}

std::string engine_bytes(QueryEngine& engine, const QueryOptions& options) {
  auto cursor = engine.query(options);
  std::string out;
  while (cursor->next_chunk(out)) {
  }
  return out;
}

std::vector<QueryOptions> representative_queries() {
  std::vector<QueryOptions> queries;
  queries.push_back({});  // everything
  QueryOptions window;
  window.start = 1800;
  window.end = 3600;
  queries.push_back(window);
  QueryOptions vp;
  vp.vp = 2;
  queries.push_back(vp);
  QueryOptions prefix;
  prefix.prefix = pfx("10.2.0.0/16");
  queries.push_back(prefix);
  QueryOptions combined;
  combined.start = 900;
  combined.end = 4500;
  combined.vp = 1;
  combined.prefix = pfx("172.16.0.0/12");
  queries.push_back(combined);
  return queries;
}

// ---------------------------------------------------------------------------
// Byte identity: parallel merged output == serial output, at 1/2/4 threads,
// compressed and raw, cache on and off.
// ---------------------------------------------------------------------------

TEST(QueryEngine, ParallelOutputMatchesSerialByteForByte) {
  for (const bool compress : {false, true}) {
    if (compress && !compression_available()) continue;
    const std::string dir =
        scratch_dir(compress ? "ident_zstd" : "ident_raw");
    build_store(dir, compress);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      par::ThreadPool pool(threads);
      metrics::Registry registry;
      SegmentCache cache({.max_bytes = 32 * 1024 * 1024,
                          .registry = &registry});
      QueryEngineConfig config;
      config.directory = dir;
      config.pool = &pool;
      config.cache = &cache;
      config.registry = &registry;
      QueryEngine engine(config);
      ASSERT_TRUE(engine.open());
      for (const auto& options : representative_queries()) {
        const std::string expected = serial_bytes(dir, options);
        EXPECT_EQ(engine_bytes(engine, options), expected)
            << "threads=" << threads << " compress=" << compress;
        // Hot path (cache populated) must not change the bytes either.
        EXPECT_EQ(engine_bytes(engine, options), expected);
      }
    }
    // The inline (pool-less, cache-less) engine is the degenerate case.
    metrics::Registry registry;
    QueryEngineConfig config;
    config.directory = dir;
    config.registry = &registry;
    QueryEngine engine(config);
    ASSERT_TRUE(engine.open());
    for (const auto& options : representative_queries()) {
      EXPECT_EQ(engine_bytes(engine, options), serial_bytes(dir, options));
    }
  }
}

TEST(QueryEngine, BloomPrunesSegmentsOnPrefixQueries) {
  const std::string dir = scratch_dir("prune");
  build_store(dir, false);
  metrics::Registry registry;
  QueryEngineConfig config;
  config.directory = dir;
  config.registry = &registry;
  QueryEngine engine(config);
  ASSERT_TRUE(engine.open());
  // 10.2.x.0/24 lives only in window 2: every other segment's bloom prunes
  // the query without a single disk read of its payload.
  QueryOptions options;
  options.prefix = pfx("10.2.0.0/16");
  const auto cursor = engine.query(options);
  EXPECT_EQ(cursor->planned_segments(), 1u);
  EXPECT_GE(engine.segments_pruned(), 5u);
  std::string out;
  while (cursor->next_chunk(out)) {
  }
  EXPECT_EQ(out, serial_bytes(dir, options));
}

// ---------------------------------------------------------------------------
// Hot-segment cache: the second query reads zero bytes from disk.
// ---------------------------------------------------------------------------

TEST(QueryEngine, CacheServesHotQueriesWithZeroDiskReads) {
  const bool compress = compression_available();
  const std::string dir = scratch_dir("hot");
  build_store(dir, compress);
  metrics::Registry registry;
  par::ThreadPool pool(2);
  SegmentCache cache({.max_bytes = 64 * 1024 * 1024, .registry = &registry});
  QueryEngineConfig config;
  config.directory = dir;
  config.pool = &pool;
  config.cache = &cache;
  config.registry = &registry;
  QueryEngine engine(config);
  ASSERT_TRUE(engine.open());

  const std::string cold = engine_bytes(engine, {});
  const std::uint64_t cold_reads = cache.disk_reads();
  EXPECT_GT(cold_reads, 0u);
  EXPECT_EQ(cache.hits(), 0u);

  // The proof the hot path touches no disk: delete every segment file.
  // The manifest snapshot and the cached payloads are all that's left.
  for (const auto& meta : *engine.snapshot()) {
    fs::remove(fs::path(dir) / meta.file);
  }
  const std::string hot = engine_bytes(engine, {});
  EXPECT_EQ(hot, cold);
  EXPECT_EQ(cache.disk_reads(), cold_reads);  // not one more load
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(engine.segments_vanished(), 0u);
  EXPECT_EQ(registry.counter_total("gill_archive_cache_hits_total"),
            cache.hits());
}

TEST(QueryEngine, LruEvictionKeepsCacheUnderItsByteBudget) {
  const std::string dir = scratch_dir("lru");
  build_store(dir, false, /*windows=*/8);
  std::uint64_t total_raw = 0;
  for (const auto& meta : load_manifest(dir)) total_raw += meta.raw_bytes;
  ASSERT_GT(total_raw, 0u);

  metrics::Registry registry;
  // A budget that fits some but not all segments forces eviction.
  SegmentCache cache({.max_bytes = static_cast<std::size_t>(total_raw / 3),
                      .registry = &registry});
  QueryEngineConfig config;
  config.directory = dir;
  config.cache = &cache;
  config.registry = &registry;
  QueryEngine engine(config);
  ASSERT_TRUE(engine.open());
  const std::string first = engine_bytes(engine, {});
  EXPECT_EQ(engine_bytes(engine, {}), first);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.bytes(), total_raw / 3);
  EXPECT_GT(cache.entries(), 0u);

  // A zero-budget cache degrades to plain loads: correct, never cached.
  SegmentCache off({.max_bytes = 0, .registry = &registry});
  config.cache = &off;
  QueryEngine uncached(config);
  ASSERT_TRUE(uncached.open());
  EXPECT_EQ(engine_bytes(uncached, {}), first);
  EXPECT_EQ(off.entries(), 0u);
  EXPECT_EQ(off.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Pinning: GC never deletes a segment an in-flight cursor holds.
// ---------------------------------------------------------------------------

TEST(QueryEngine, GcNeverDeletesPinnedSegments) {
  const std::string dir = scratch_dir("pins");
  build_store(dir, false, /*windows=*/4);
  const std::string expected = serial_bytes(dir, {});

  metrics::Registry registry;
  SegmentPins pins;
  QueryEngineConfig config;
  config.directory = dir;
  config.pins = &pins;
  config.registry = &registry;
  QueryEngine engine(config);
  ASSERT_TRUE(engine.open());

  RetentionPolicy policy;
  policy.max_age_secs = 1;  // condemns every window at now=10^6
  {
    auto cursor = engine.query({});  // pins all four windows
    EXPECT_EQ(pins.pinned_count(), 4u);
    const auto result =
        run_gc(dir, load_manifest(dir), policy, &pins, 1000000);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->skipped_pinned, 4u);
    EXPECT_TRUE(result->deleted_files.empty());
    // The cursor streams the full store even though GC just condemned it.
    std::string out;
    while (cursor->next_chunk(out)) {
    }
    EXPECT_EQ(out, expected);
    EXPECT_EQ(engine.segments_vanished(), 0u);
  }
  // Cursor gone, pins released: the next pass actually deletes.
  EXPECT_EQ(pins.pinned_count(), 0u);
  const auto result = run_gc(dir, load_manifest(dir), policy, &pins, 1000000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->deleted_files.size(), 4u);
  EXPECT_TRUE(load_manifest(dir).empty());
}

// ---------------------------------------------------------------------------
// Churn soak: concurrent clients query while the writer rotates/seals and
// retention deletes — no vanished segments, every response parses, and the
// quiesced store is byte-identical between engine and serial reader.
// ---------------------------------------------------------------------------

TEST(QueryEngine, QueriesUnderRotationSealingAndGcChurn) {
  const std::string dir = scratch_dir("churn");
  metrics::Registry registry;
  par::ThreadPool io_pool(1, &registry);
  SegmentWriterConfig writer_config;
  writer_config.directory = dir;
  writer_config.rotate_secs = 60;  // small windows: constant sealing
  writer_config.flush_bytes = 256;
  writer_config.compress = compression_available();
  writer_config.pool = &io_pool;
  writer_config.registry = &registry;
  SegmentWriter writer(writer_config);
  ASSERT_TRUE(writer.open());

  SegmentPins pins;
  SegmentCache cache({.max_bytes = 1 * 1024 * 1024, .registry = &registry});
  par::ThreadPool query_pool(4, &registry);
  QueryEngineConfig engine_config;
  engine_config.directory = dir;
  engine_config.pool = &query_pool;
  engine_config.cache = &cache;
  engine_config.pins = &pins;
  engine_config.registry = &registry;
  QueryEngine engine(engine_config);
  ASSERT_TRUE(engine.open());

  RetentionPolicy policy;
  policy.max_age_secs = 600;  // ten windows of history: GC fires often

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> parse_failures{0};

  // The writer thread owns every writer-side call (append/tick/retention),
  // mirroring the daemon's control loop; it also refreshes the engine when
  // the manifest generation moves, like the daemon tick does. The periodic
  // wait_idle lets the single io worker drain its seal queue so the
  // manifest actually advances (and GC has material) DURING the churn, not
  // only at close().
  std::thread churn([&] {
    Timestamp now = 900;
    std::uint64_t last_generation = 0;
    for (int i = 0; i < 6000 && !stop.load(); ++i) {
      writer.store(make_update(
          static_cast<VpId>(i % 3), now,
          "10." + std::to_string(i % 20) + "." + std::to_string(i % 200) +
              ".0/24"));
      now += 1;
      if (i % 50 == 0) writer.tick(now);
      if (i % 300 == 0) writer.wait_idle();
      if (i % 200 == 0) {
        writer.run_retention(policy, &pins, now,
                             [&](const std::string& file) {
                               cache.invalidate(dir, file);
                             });
      }
      const std::uint64_t generation = writer.manifest_generation();
      if (generation != last_generation) {
        last_generation = generation;
        engine.refresh();
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const auto queries = representative_queries();
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load()) {
        const std::string body =
            engine_bytes(engine, queries[i++ % queries.size()]);
        responses.fetch_add(1);
        // Every response must be a clean framed-MRT stream, whatever
        // snapshot it was served from.
        mrt::Reader reader{std::span(
            reinterpret_cast<const std::uint8_t*>(body.data()), body.size())};
        while (reader.next()) {
        }
        if (!reader.ok()) parse_failures.fetch_add(1);
      }
    });
  }
  churn.join();
  for (auto& client : clients) client.join();

  EXPECT_GT(responses.load(), 0u);
  EXPECT_EQ(parse_failures.load(), 0u);
  // The pinning protocol held: no planned segment ever vanished mid-scan.
  EXPECT_EQ(engine.segments_vanished(), 0u);

  // One more retention pass now that the clients (and their pins) are
  // gone: on a heavily loaded or sanitizer build the clients can hold
  // pins continuously, legitimately starving every churn-time GC pass —
  // this final pass must actually delete the aged windows.
  writer.run_retention(policy, &pins, 900 + 6000, [&](const std::string& f) {
    cache.invalidate(dir, f);
  });

  // Quiesced: seal the tail, drain I/O (close() waits out every queued
  // seal and retention job), refresh — the parallel engine and the serial
  // reader must now agree byte for byte.
  writer.close();
  EXPECT_FALSE(writer.failed());
  EXPECT_GT(writer.segments_sealed(), 10u);
  EXPECT_GT(registry.counter_total("gill_archive_gc_deleted_segments_total"),
            0u);
  ASSERT_TRUE(engine.refresh());
  EXPECT_EQ(pins.pinned_count(), 0u);
  for (const auto& options : representative_queries()) {
    EXPECT_EQ(engine_bytes(engine, options), serial_bytes(dir, options));
  }
}

}  // namespace
}  // namespace gill::archive
