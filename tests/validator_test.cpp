#include <gtest/gtest.h>

#include "collector/platform.hpp"
#include "collector/validator.hpp"

namespace gill::collect {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

bgp::Update make(const char* prefix, std::initializer_list<bgp::AsNumber> path) {
  bgp::Update update;
  update.prefix = pfx(prefix);
  update.path = bgp::AsPath(path);
  return update;
}

TEST(Validator, MartianPrefixesRejected) {
  const RouteValidator validator;
  EXPECT_EQ(validator.validate(make("127.0.0.0/8", {65001})),
            RouteVerdict::kMartianPrefix);
  EXPECT_EQ(validator.validate(make("224.1.2.0/24", {65001})),
            RouteVerdict::kMartianPrefix);
  EXPECT_EQ(validator.validate(make("192.168.1.0/24", {65001})),
            RouteVerdict::kMartianPrefix);
  EXPECT_EQ(validator.validate(make("fe80::/10", {65001})),
            RouteVerdict::kMartianPrefix);
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {65001})),
            RouteVerdict::kOk);
  EXPECT_EQ(validator.validate(make("2001:db8::/32", {65001})),
            RouteVerdict::kOk);
}

TEST(Validator, PathLoopsRejectedButPrependingAllowed) {
  const RouteValidator validator;
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {1, 2, 1})),
            RouteVerdict::kPathLoop);
  bgp::Update prepended = make("203.0.113.0/24", {1, 2, 2, 2, 3});
  EXPECT_EQ(validator.validate(prepended), RouteVerdict::kOk);
}

TEST(Validator, OriginMismatchAfterStability) {
  RouteValidator validator;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(validator.validate_and_learn(
                  make("203.0.113.0/24", {65001, 64500})),
              RouteVerdict::kOk);
  }
  // The origin is stable now: a different origin is quarantined.
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {65002, 66666})),
            RouteVerdict::kOriginMismatch);
  // But the same origin via a different path is fine.
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {65001, 64999, 64500})),
            RouteVerdict::kOk);
}

TEST(Validator, OriginNotStableBeforeThreshold) {
  RouteValidator validator;
  validator.validate_and_learn(make("203.0.113.0/24", {65001, 64500}));
  // Only one observation: an origin change is not yet a violation.
  EXPECT_NE(validator.validate(make("203.0.113.0/24", {65002, 64501})),
            RouteVerdict::kOriginMismatch);
}

TEST(Validator, FabricatedPathsNeedMultipleUnknownLinks) {
  RouteValidator validator;
  // Learn a small world.
  validator.learn(make("203.0.113.0/24", {1, 2, 3}));
  validator.learn(make("198.51.100.0/24", {1, 4, 3}));
  EXPECT_EQ(validator.known_link_count(), 4u);

  // One or two new adjacencies = normal topology growth (a single new
  // transit AS inserted mid-path creates two).
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {1, 2, 5, 3})),
            RouteVerdict::kOk);
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {9, 8, 3})),
            RouteVerdict::kOk);
  // Three unknown adjacencies spliced into one path = fabricated.
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {9, 8, 7, 3})),
            RouteVerdict::kFabricatedPath);
}

TEST(Validator, EmptyStateAcceptsBootstrap) {
  RouteValidator validator;
  // With no learned links, new paths are not "fabricated" (bootstrap).
  EXPECT_EQ(validator.validate(make("203.0.113.0/24", {9, 8, 3})),
            RouteVerdict::kOk);
}

TEST(Validator, WithdrawalsAlwaysPass) {
  const RouteValidator validator;
  bgp::Update withdrawal;
  withdrawal.prefix = pfx("127.0.0.0/8");  // even for a martian
  withdrawal.withdrawal = true;
  EXPECT_EQ(validator.validate(withdrawal), RouteVerdict::kOk);
}

TEST(Validator, VerdictNames) {
  EXPECT_EQ(to_string(RouteVerdict::kOk), "ok");
  EXPECT_EQ(to_string(RouteVerdict::kFabricatedPath), "fabricated-path");
}

// ---------------------------------------------------------------------------
// Platform forwarding rules (§14 custom services).
// ---------------------------------------------------------------------------

TEST(Forwarding, RulesSeeUpdatesBeforeFilters) {
  Platform platform;
  const auto vp = platform.add_peer(65010, 0);
  platform.step(1);

  std::vector<bgp::Update> forwarded;
  platform.add_forwarding_rule(
      pfx("203.0.113.0/24"),
      [&](const bgp::Update& update) { forwarded.push_back(update); });
  EXPECT_EQ(platform.forwarding_rule_count(), 1u);

  bgp::Update mine = make("203.0.113.0/24", {65010, 64500});
  bgp::Update other = make("198.51.100.0/24", {65010, 64500});
  platform.remote(vp).send_update(mine);
  platform.remote(vp).send_update(other);
  platform.step(2);

  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0].prefix, pfx("203.0.113.0/24"));
}

TEST(Forwarding, CoveringPrefixMatchesSpecifics) {
  Platform platform;
  const auto vp = platform.add_peer(65010, 0);
  platform.step(1);
  std::size_t forwarded = 0;
  platform.add_forwarding_rule(pfx("203.0.0.0/16"),
                               [&](const bgp::Update&) { ++forwarded; });
  platform.remote(vp).send_update(make("203.0.113.0/24", {65010}));
  platform.remote(vp).send_update(make("203.0.42.0/24", {65010}));
  platform.remote(vp).send_update(make("204.0.0.0/24", {65010}));
  platform.step(2);
  EXPECT_EQ(forwarded, 2u);
}

}  // namespace
}  // namespace gill::collect
