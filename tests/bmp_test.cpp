#include <gtest/gtest.h>

#include "wire/bmp.hpp"

namespace gill::wire {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

BmpPeerHeader sample_peer() {
  BmpPeerHeader peer;
  peer.address = net::IpAddress::parse("192.0.2.1").value();
  peer.as = 65010;
  peer.bgp_id = 0x0A000001;
  peer.timestamp_sec = 1693526400;
  peer.timestamp_usec = 250000;
  return peer;
}

TEST(Bmp, RouteMonitoringRoundTrip) {
  BmpRouteMonitoring monitoring;
  monitoring.peer = sample_peer();
  monitoring.update.nlri = {pfx("203.0.113.0/24")};
  monitoring.update.path = bgp::AsPath{65010, 64500};
  monitoring.update.communities = bgp::CommunitySet{{65010, 666}};
  monitoring.update.next_hop = 0x0A000002;

  const auto bytes = encode_bmp(monitoring);
  std::size_t consumed = 0;
  const auto decoded = decode_bmp(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, bytes.size());
  const auto& result = std::get<BmpRouteMonitoring>(*decoded);
  EXPECT_EQ(result, monitoring);
}

TEST(Bmp, RouteMonitoringV6Peer) {
  BmpRouteMonitoring monitoring;
  monitoring.peer = sample_peer();
  monitoring.peer.address = net::IpAddress::parse("2001:db8::1").value();
  monitoring.update.nlri_v6 = {pfx("2001:db8:aaaa::/48")};
  monitoring.update.path = bgp::AsPath{65010};

  const auto bytes = encode_bmp(monitoring);
  std::size_t consumed = 0;
  const auto decoded = decode_bmp(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<BmpRouteMonitoring>(*decoded);
  EXPECT_TRUE(result.peer.address.is_v6());
  EXPECT_EQ(result.peer.address.str(), "2001:db8::1");
  EXPECT_EQ(result.update.nlri_v6, monitoring.update.nlri_v6);
}

TEST(Bmp, PeerUpCarriesBothOpens) {
  BmpPeerUp up;
  up.peer = sample_peer();
  up.local_address = net::IpAddress::parse("192.0.2.254").value();
  up.local_port = 179;
  up.remote_port = 33001;
  up.sent_open.as = 65000;
  up.sent_open.bgp_id = 1;
  up.received_open.as = 4200000000;  // AS4
  up.received_open.bgp_id = 2;

  const auto bytes = encode_bmp(up);
  std::size_t consumed = 0;
  const auto decoded = decode_bmp(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<BmpPeerUp>(*decoded);
  EXPECT_EQ(result.local_address.str(), "192.0.2.254");
  EXPECT_EQ(result.sent_open.as, 65000u);
  EXPECT_EQ(result.received_open.as, 4200000000u);
  EXPECT_EQ(result.remote_port, 33001);
}

TEST(Bmp, PeerDown) {
  BmpPeerDown down;
  down.peer = sample_peer();
  down.reason = 2;
  const auto bytes = encode_bmp(down);
  std::size_t consumed = 0;
  const auto decoded = decode_bmp(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<BmpPeerDown>(*decoded), down);
}

TEST(Bmp, InitiationAndTerminationTlvs) {
  BmpInitiation initiation;
  initiation.information.push_back(BmpInformation{2, "gill-router"});
  initiation.information.push_back(BmpInformation{1, "a BMP-fed GILL peer"});
  const auto bytes = encode_bmp(initiation);
  std::size_t consumed = 0;
  const auto decoded = decode_bmp(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<BmpInitiation>(*decoded), initiation);

  BmpTermination termination;
  termination.information.push_back(BmpInformation{0, "bye"});
  const auto term_bytes = encode_bmp(termination);
  const auto term_decoded = decode_bmp(term_bytes, consumed);
  ASSERT_TRUE(term_decoded.has_value());
  EXPECT_EQ(std::get<BmpTermination>(*term_decoded), termination);
}

TEST(Bmp, IncompleteAsksForMore) {
  const auto bytes = encode_bmp(BmpPeerDown{sample_peer(), 1});
  std::size_t consumed = 1;
  const auto decoded =
      decode_bmp(std::span(bytes.data(), bytes.size() - 1), consumed);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(consumed, 0u);
}

TEST(Bmp, WrongVersionResynchronizes) {
  std::vector<std::uint8_t> garbage{9, 0, 0, 0, 7, 0, 0};
  std::size_t consumed = 0;
  EXPECT_FALSE(decode_bmp(garbage, consumed).has_value());
  EXPECT_EQ(consumed, 1u);
}

TEST(Bmp, BackToBackMessages) {
  std::vector<std::uint8_t> buffer;
  const auto first = encode_bmp(BmpInitiation{{{2, "sys"}}});
  BmpRouteMonitoring monitoring;
  monitoring.peer = sample_peer();
  monitoring.update.nlri = {pfx("10.0.0.0/8")};
  monitoring.update.path = bgp::AsPath{65010};
  monitoring.update.next_hop = 1;
  const auto second = encode_bmp(monitoring);
  buffer.insert(buffer.end(), first.begin(), first.end());
  buffer.insert(buffer.end(), second.begin(), second.end());

  std::size_t consumed = 0;
  auto decoded = decode_bmp(buffer, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(bmp_type_of(*decoded), BmpType::kInitiation);
  decoded = decode_bmp(std::span(buffer).subspan(consumed), consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(bmp_type_of(*decoded), BmpType::kRouteMonitoring);
}

}  // namespace
}  // namespace gill::wire
