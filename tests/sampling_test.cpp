#include <gtest/gtest.h>

#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/detectors.hpp"

namespace gill::sample {
namespace {

/// A shared mid-size world: topology, VPs, one training hour and one
/// evaluation hour.
struct World {
  topo::AsTopology topology;
  sim::InternetConfig config;
  std::unique_ptr<sim::Internet> internet;
  bgp::UpdateStream ribs;
  bgp::UpdateStream training;
  bgp::UpdateStream eval;
  std::vector<sim::GroundTruth> truths;
  uc::OriginTable origins;

  explicit World(std::uint64_t seed = 30)
      : topology(topo::generate_artificial({.as_count = 300, .seed = seed})) {
    for (bgp::AsNumber as = 0; as < 300; as += 5) {
      config.vp_hosts.push_back(as);
    }
    config.rng_seed = seed + 1;
    config.path_exploration_probability = 0.3;
    internet = std::make_unique<sim::Internet>(topology, config);
    ribs = internet->rib_dump(0);
    origins = uc::OriginTable::from_rib(ribs);

    sim::WorkloadConfig training_workload;
    training_workload.seed = seed + 2;
    training = sim::generate_workload(*internet, 10, training_workload);
    internet->ground_truth().clear();  // evaluation truths only

    sim::WorkloadConfig eval_workload;
    eval_workload.seed = seed + 3;
    eval = sim::generate_workload(*internet, 4000, eval_workload);
    truths = internet->ground_truth();
  }

  SamplingContext context() const {
    SamplingContext ctx;
    ctx.all_updates = &eval;
    ctx.all_ribs = &ribs;
    ctx.training = &training;
    ctx.training_ribs = &ribs;
    ctx.topology = &topology;
    ctx.vp_hosts = &config.vp_hosts;
    ctx.truths = &truths;
    ctx.origins = &origins;
    ctx.seed = 99;
    return ctx;
  }
};

const World& world() {
  static World instance;
  return instance;
}

TEST(Gill, PipelineRetainsMinorityOfUpdates) {
  const auto ctx = world().context();
  GillSampler gill;
  const auto sample = gill.sample(ctx, 0);
  ASSERT_GT(sample.updates.size(), 0u);
  // The whole point: a small fraction of the full stream is retained.
  EXPECT_LT(sample.updates.size(), ctx.all_updates->size());
  // Anchors contribute their full RIBs.
  const auto& pipeline = gill.last_pipeline();
  EXPECT_FALSE(pipeline.anchors.empty());
  EXPECT_GT(sample.ribs.size(), 0u);
  EXPECT_GT(pipeline.filters.drop_rule_count(), 0u);
  EXPECT_GT(pipeline.events_used, 0u);
}

TEST(Gill, AnchorUpdatesAreNeverFiltered) {
  const auto ctx = world().context();
  GillSampler gill;
  const auto sample = gill.sample(ctx, 0);
  const auto& pipeline = gill.last_pipeline();
  // Every eval update from an anchor VP must be in the sample.
  std::size_t anchor_updates = 0;
  for (const auto& update : *ctx.all_updates) {
    if (pipeline.filters.is_anchor(update.vp)) ++anchor_updates;
  }
  std::size_t sampled_anchor_updates = 0;
  for (const auto& update : sample.updates) {
    if (pipeline.filters.is_anchor(update.vp)) ++sampled_anchor_updates;
  }
  EXPECT_EQ(anchor_updates, sampled_anchor_updates);
}

TEST(Gill, BudgetCapsRetainedUpdates) {
  const auto ctx = world().context();
  GillSampler gill;
  const auto sample = gill.sample(ctx, 50);
  EXPECT_LE(sample.updates.size(), 50u);
}

TEST(Baselines, AllSchemesRespectTheBudget) {
  const auto ctx = world().context();
  const std::size_t budget = 300;
  std::vector<std::unique_ptr<Sampler>> samplers;
  samplers.push_back(std::make_unique<RandomUpdateSampler>());
  samplers.push_back(std::make_unique<RandomVpSampler>());
  samplers.push_back(std::make_unique<AsDistanceSampler>());
  samplers.push_back(std::make_unique<UnbiasedSampler>());
  samplers.push_back(
      std::make_unique<DefinitionSampler>(red::Definition::kDef1));
  samplers.push_back(
      std::make_unique<DefinitionSampler>(red::Definition::kDef3));
  for (const auto& sampler : samplers) {
    const auto sample = sampler->sample(ctx, budget);
    EXPECT_LE(sample.updates.size(), budget) << sampler->name();
    EXPECT_GT(sample.updates.size(), 0u) << sampler->name();
  }
}

TEST(Baselines, RandomUpdateSamplerIsDeterministicPerSeed) {
  auto ctx = world().context();
  RandomUpdateSampler sampler;
  const auto a = sampler.sample(ctx, 100);
  const auto b = sampler.sample(ctx, 100);
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (std::size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates.updates()[i], b.updates.updates()[i]);
  }
  ctx.seed = 123;
  const auto c = sampler.sample(ctx, 100);
  bool differs = c.updates.size() != a.updates.size();
  for (std::size_t i = 0; !differs && i < a.updates.size(); ++i) {
    differs = !(a.updates.updates()[i] == c.updates.updates()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Baselines, VpSchemesIncludeRibsOfSelectedVpsOnly) {
  const auto ctx = world().context();
  RandomVpSampler sampler;
  const auto sample = sampler.sample(ctx, 500);
  std::set<bgp::VpId> update_vps;
  for (const auto& u : sample.updates) update_vps.insert(u.vp);
  for (const auto& entry : sample.ribs) {
    EXPECT_TRUE(update_vps.contains(entry.vp) || sample.updates.empty());
  }
}

TEST(Baselines, CollectVpsHonorsOrderAndBudget) {
  const auto ctx = world().context();
  const auto sample = collect_vps(ctx, {0, 1, 2}, 10);
  EXPECT_LE(sample.updates.size(), 10u);
  for (const auto& update : sample.updates) {
    EXPECT_LE(update.vp, 2u);
  }
}

TEST(UseCaseSpecifics, OutperformOnTheirOwnObjective) {
  const auto ctx = world().context();
  // Budget: what GILL would retain, to mirror the paper's setup.
  GillSampler gill;
  const auto gill_sample = gill.sample(ctx, 0);
  const std::size_t budget = gill_sample.updates.size();
  ASSERT_GT(budget, 0u);

  const UseCaseSampler topo_specific(UseCase::kTopologyMapping);
  const auto specific_sample = topo_specific.sample(ctx, budget);
  RandomVpSampler random;
  const auto random_sample = random.sample(ctx, budget);

  const double specific_score =
      score_use_case(UseCase::kTopologyMapping, specific_sample, ctx);
  const double random_score =
      score_use_case(UseCase::kTopologyMapping, random_sample, ctx);
  // The overfit scheme must beat a random pick on its own objective.
  EXPECT_GE(specific_score, random_score);
}

TEST(Scores, GillBeatsRandomVpOnMostUseCases) {
  const auto ctx = world().context();
  GillSampler gill;
  const auto gill_sample = gill.sample(ctx, 0);
  const std::size_t budget = gill_sample.updates.size();
  RandomVpSampler random;
  const auto random_sample = random.sample(ctx, budget);

  int wins = 0;
  int total = 0;
  for (const UseCase use_case :
       {UseCase::kTransientPaths, UseCase::kMoas, UseCase::kTopologyMapping,
        UseCase::kActionComms, UseCase::kUnchangedPaths}) {
    const double g = score_use_case(use_case, gill_sample, ctx);
    const double r = score_use_case(use_case, random_sample, ctx);
    ++total;
    if (g >= r - 0.05) ++wins;  // the paper's ±5% similarity band
  }
  // GILL should match or beat random-VP on (at least) most use cases.
  EXPECT_GE(wins, total - 1);
}

TEST(GillVariants, UpdAndVpAreSimplifications) {
  const auto ctx = world().context();
  GillUpdSampler upd;
  const auto upd_sample = upd.sample(ctx, 0);
  EXPECT_GT(upd_sample.updates.size(), 0u);
  EXPECT_EQ(upd_sample.ribs.size(), 0u);  // no anchors => no full RIBs

  GillVpSampler vp;
  const auto vp_sample = vp.sample(ctx, 0);
  EXPECT_GT(vp_sample.ribs.size(), 0u);
  // GILL-vp keeps only whole VPs.
  std::set<bgp::VpId> vp_set;
  for (const auto& entry : vp_sample.ribs) vp_set.insert(entry.vp);
  for (const auto& update : vp_sample.updates) {
    EXPECT_TRUE(vp_set.contains(update.vp));
  }
}

TEST(Names, SchemesReportPaperNames) {
  EXPECT_EQ(GillSampler().name(), "GILL");
  EXPECT_EQ(GillUpdSampler().name(), "GILL-upd");
  EXPECT_EQ(GillVpSampler().name(), "GILL-vp");
  EXPECT_EQ(RandomUpdateSampler().name(), "Rnd.-Upd.");
  EXPECT_EQ(RandomVpSampler().name(), "Rnd.-VP");
  EXPECT_EQ(AsDistanceSampler().name(), "AS-Dist.");
  EXPECT_EQ(UnbiasedSampler().name(), "Unbiased");
  EXPECT_EQ(DefinitionSampler(red::Definition::kDef2).name(), "Def. 2");
  EXPECT_EQ(UseCaseSampler(UseCase::kMoas).name(), "Spec. II");
}

}  // namespace
}  // namespace gill::sample
