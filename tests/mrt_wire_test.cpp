#include <gtest/gtest.h>

#include <cstdio>

#include "mrt/mrt.hpp"
#include "wire/messages.hpp"

namespace gill {
namespace {

using bgp::AsPath;
using bgp::Update;

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

Update sample_update() {
  Update u;
  u.vp = 42;
  u.time = 1693526400;
  u.prefix = pfx("203.0.113.0/24");
  u.path = AsPath{65001, 65002, 65003};
  u.communities = bgp::CommunitySet{{65001, 100}, {65002, 200}};
  return u;
}

// ---------------------------------------------------------------------------
// MRT
// ---------------------------------------------------------------------------

TEST(Mrt, UpdateRoundTrip) {
  mrt::Writer writer;
  writer.write_update(sample_update());
  mrt::Reader reader(writer.buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->type, mrt::RecordType::kBgp4mp);
  EXPECT_EQ(record->update, sample_update());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.ok());
}

TEST(Mrt, WithdrawalRoundTrip) {
  Update withdrawal;
  withdrawal.vp = 7;
  withdrawal.time = 100;
  withdrawal.prefix = pfx("10.0.0.0/8");
  withdrawal.withdrawal = true;
  mrt::Writer writer;
  writer.write_update(withdrawal);
  mrt::Reader reader(writer.buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->update.withdrawal);
  EXPECT_TRUE(record->update.path.empty());
  EXPECT_EQ(record->update.prefix, withdrawal.prefix);
}

TEST(Mrt, V6PrefixRoundTrip) {
  Update u = sample_update();
  u.prefix = pfx("2001:db8:1234::/48");
  mrt::Writer writer;
  writer.write_update(u);
  mrt::Reader reader(writer.buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->update.prefix, u.prefix);
}

TEST(Mrt, RibEntryUsesTableDumpType) {
  mrt::Writer writer;
  writer.write_rib_entry(sample_update());
  mrt::Reader reader(writer.buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->type, mrt::RecordType::kTableDumpV2);
}

TEST(Mrt, TruncatedBufferFailsCleanly) {
  mrt::Writer writer;
  writer.write_update(sample_update());
  auto truncated = writer.buffer();
  truncated.resize(truncated.size() - 3);
  mrt::Reader reader(truncated);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(Mrt, TruncationAtEveryByteBoundaryReadsThePrefixCleanly) {
  // Fuzz-style sweep over the torn-tail space: a three-record stream cut at
  // EVERY byte from the end of the second record to the end of the buffer.
  // Whatever survives, the reader must hand back exactly the complete
  // records, park offset() on the last complete boundary (the archive's
  // recovery scan truncates there), and never over-read or throw.
  mrt::Writer writer;
  std::vector<Update> updates;
  for (int i = 0; i < 3; ++i) {
    Update u = sample_update();
    u.time = 1000 + i;
    u.vp = static_cast<bgp::VpId>(i);
    u.prefix = i == 2 ? pfx("2001:db8::/48") : u.prefix;
    updates.push_back(u);
    writer.write_update(u);
  }
  const std::vector<std::uint8_t> full = writer.buffer();
  mrt::Writer head;
  head.write_update(updates[0]);
  head.write_update(updates[1]);
  const std::size_t tail_start = head.buffer().size();

  for (std::size_t cut = tail_start; cut <= full.size(); ++cut) {
    mrt::Reader reader(std::span<const std::uint8_t>(full).first(cut));
    std::size_t decoded = 0;
    while (auto record = reader.next()) {
      ASSERT_LT(decoded, updates.size()) << "cut at " << cut;
      EXPECT_EQ(record->update, updates[decoded]) << "cut at " << cut;
      ++decoded;
    }
    if (cut == tail_start || cut == full.size()) {
      // Cut on a record boundary: a clean, complete stream.
      EXPECT_TRUE(reader.ok()) << "cut at " << cut;
      EXPECT_EQ(decoded, cut == full.size() ? 3u : 2u) << "cut at " << cut;
      EXPECT_EQ(reader.offset(), cut) << "cut at " << cut;
    } else {
      // Mid-record cut: the complete prefix decodes, the tail reports torn.
      EXPECT_FALSE(reader.ok()) << "cut at " << cut;
      EXPECT_EQ(decoded, 2u) << "cut at " << cut;
      EXPECT_EQ(reader.offset(), tail_start) << "cut at " << cut;
    }
  }
}

TEST(Mrt, StreamRoundTripThroughMemory) {
  bgp::UpdateStream stream;
  for (int i = 0; i < 50; ++i) {
    Update u = sample_update();
    u.time = 1000 + i;
    u.vp = static_cast<bgp::VpId>(i % 5);
    stream.push(u);
  }
  stream.sort();
  const auto bytes = mrt::encode_stream(stream);
  const auto decoded = mrt::decode_stream(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded->updates()[i], stream.updates()[i]);
  }
}

TEST(Mrt, StreamRoundTripThroughFile) {
  bgp::UpdateStream stream;
  stream.push(sample_update());
  const std::string path = "/tmp/gill_mrt_test.mrt";
  ASSERT_TRUE(mrt::write_stream(stream, path));
  const auto loaded = mrt::read_stream(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->updates()[0], sample_update());
  std::remove(path.c_str());
}

TEST(Mrt, ReadMissingFileFails) {
  EXPECT_FALSE(mrt::read_stream("/tmp/gill_does_not_exist.mrt").has_value());
}

// ---------------------------------------------------------------------------
// Wire (RFC 4271)
// ---------------------------------------------------------------------------

TEST(Wire, OpenRoundTripWithAs4Capability) {
  wire::OpenMessage open;
  open.as = 4200000001;  // needs 4 bytes
  open.hold_time = 180;
  open.bgp_id = 0x0A000001;
  const auto bytes = wire::encode(open);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, bytes.size());
  const auto& result = std::get<wire::OpenMessage>(*decoded);
  EXPECT_EQ(result.as, open.as);  // recovered from the AS4 capability
  EXPECT_EQ(result.hold_time, 180);
  EXPECT_EQ(result.bgp_id, open.bgp_id);
}

TEST(Wire, UpdateRoundTrip) {
  wire::UpdateMessage update;
  update.nlri = {pfx("203.0.113.0/24"), pfx("198.51.100.0/24")};
  update.withdrawn = {pfx("192.0.2.0/24")};
  update.path = AsPath{65001, 65002};
  update.communities = bgp::CommunitySet{{65001, 666}};
  update.next_hop = 0x0A000001;
  const auto bytes = wire::encode(update);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<wire::UpdateMessage>(*decoded);
  EXPECT_EQ(result, update);
}

TEST(Wire, UpdateWithV6MpReach) {
  wire::UpdateMessage update;
  update.nlri_v6 = {pfx("2001:db8::/32"), pfx("2001:db8:ffff::/48")};
  update.withdrawn_v6 = {pfx("2001:db8:dead::/48")};
  update.path = AsPath{65001};
  const auto bytes = wire::encode(update);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<wire::UpdateMessage>(*decoded);
  EXPECT_EQ(result.nlri_v6, update.nlri_v6);
  EXPECT_EQ(result.withdrawn_v6, update.withdrawn_v6);
  EXPECT_EQ(result.path, update.path);
}

TEST(Wire, KeepaliveAndNotification) {
  std::size_t consumed = 0;
  const auto keepalive_bytes = wire::encode(wire::KeepaliveMessage{});
  EXPECT_EQ(keepalive_bytes.size(), wire::kHeaderSize);
  auto decoded = wire::decode(keepalive_bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(wire::type_of(*decoded), wire::MessageType::kKeepalive);

  const auto notification_bytes =
      wire::encode(wire::NotificationMessage{6, 2});
  decoded = wire::decode(notification_bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& notification = std::get<wire::NotificationMessage>(*decoded);
  EXPECT_EQ(notification.code, 6);
  EXPECT_EQ(notification.subcode, 2);
}

TEST(Wire, IncompleteBufferAsksForMoreBytes) {
  const auto bytes = wire::encode(wire::KeepaliveMessage{});
  std::size_t consumed = 1;
  const auto decoded =
      wire::decode(std::span(bytes.data(), bytes.size() - 1), consumed);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(consumed, 0u);  // incomplete, not garbage
}

TEST(Wire, GarbageTriggersResynchronization) {
  std::vector<std::uint8_t> garbage(32, 0xAB);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(garbage, consumed);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(consumed, 1u);  // skip one byte and retry
}

TEST(Wire, BackToBackMessagesParseSequentially) {
  std::vector<std::uint8_t> buffer;
  const auto first = wire::encode(wire::KeepaliveMessage{});
  wire::UpdateMessage update;
  update.nlri = {pfx("203.0.113.0/24")};
  update.path = AsPath{65001};
  update.next_hop = 1;
  const auto second = wire::encode(update);
  buffer.insert(buffer.end(), first.begin(), first.end());
  buffer.insert(buffer.end(), second.begin(), second.end());

  std::size_t consumed = 0;
  auto message = wire::decode(buffer, consumed);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(wire::type_of(*message), wire::MessageType::kKeepalive);
  const std::size_t offset = consumed;
  message = wire::decode(std::span(buffer).subspan(offset), consumed);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(wire::type_of(*message), wire::MessageType::kUpdate);
}

class WirePrefixRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(WirePrefixRoundTrip, NlriEncoding) {
  wire::UpdateMessage update;
  const auto prefix = pfx(GetParam());
  if (prefix.family() == net::Family::v4) {
    update.nlri = {prefix};
    update.next_hop = 1;
  } else {
    update.nlri_v6 = {prefix};
  }
  update.path = AsPath{65001};
  const auto bytes = wire::encode(update);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<wire::UpdateMessage>(*decoded);
  if (prefix.family() == net::Family::v4) {
    ASSERT_EQ(result.nlri.size(), 1u);
    EXPECT_EQ(result.nlri[0], prefix);
  } else {
    ASSERT_EQ(result.nlri_v6.size(), 1u);
    EXPECT_EQ(result.nlri_v6[0], prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, WirePrefixRoundTrip,
                         ::testing::Values("0.0.0.0/0", "10.0.0.0/7",
                                           "10.0.0.0/8", "10.128.0.0/9",
                                           "192.0.2.128/25",
                                           "203.0.113.255/32", "2001:db8::/32",
                                           "2001:db8::1/128"));

}  // namespace
}  // namespace gill
