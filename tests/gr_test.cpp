// RFC 4724 graceful restart: the capability on the wire (encode/decode +
// golden bytes), the End-of-RIB marker, the RIB's stale-entry machinery,
// and the daemon's helper-mode FSM — a flapping GR peer resyncs by delta
// (identical re-advertisements suppressed, missing entries swept at EoR)
// instead of a full purge-and-replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "daemon/daemon.hpp"
#include "wire/messages.hpp"

namespace gill::daemon {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

RetryPolicy no_jitter_policy() {
  RetryPolicy policy;
  policy.base = 1;
  policy.jitter = 0.0;
  return policy;
}

/// True when `haystack` contains `needle` as a contiguous byte run.
bool contains_bytes(const std::vector<std::uint8_t>& haystack,
                    const std::vector<std::uint8_t>& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

// ---------------------------------------------------------------------------
// Wire: the GR capability and the End-of-RIB marker.
// ---------------------------------------------------------------------------

TEST(GrWire, CapabilityRoundTrips) {
  wire::OpenMessage open;
  open.as = 65000;
  open.gr_enabled = true;
  open.gr_restarting = true;
  open.gr_restart_time = 300;
  const auto bytes = wire::encode(open);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  const auto& reopened = std::get<wire::OpenMessage>(*decoded);
  EXPECT_TRUE(reopened.gr_enabled);
  EXPECT_TRUE(reopened.gr_restarting);
  EXPECT_EQ(reopened.gr_restart_time, 300);
  EXPECT_EQ(reopened.as, 65000u);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(GrWire, CapabilityGoldenBytes) {
  // RFC 4724 §3: code 64, two AFI/SAFI tuples (IPv4 + IPv6 unicast, both
  // forwarding-preserved), restart word = Restart State flag | time.
  wire::OpenMessage open;
  open.as = 65000;
  open.gr_enabled = true;
  open.gr_restarting = true;
  open.gr_restart_time = 300;  // 0x12C
  const auto bytes = wire::encode(open);
  const std::vector<std::uint8_t> capability{
      64, 10,            // code, length (2 + 2 tuples x 4)
      0x81, 0x2C,        // 0x8000 (restarting) | 300
      0x00, 0x01, 0x01, 0x80,  // AFI 1 (v4), SAFI 1, forwarding preserved
      0x00, 0x02, 0x01, 0x80,  // AFI 2 (v6), SAFI 1, forwarding preserved
  };
  EXPECT_TRUE(contains_bytes(bytes, capability));

  // Without the Restart State flag the top bit clears.
  open.gr_restarting = false;
  const auto calm = wire::encode(open);
  EXPECT_TRUE(contains_bytes(calm, {64, 10, 0x01, 0x2C}));
}

TEST(GrWire, PlainOpenCarriesNoGrCapability) {
  wire::OpenMessage open;
  open.as = 65000;
  const auto bytes = wire::encode(open);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(std::get<wire::OpenMessage>(*decoded).gr_enabled);
}

TEST(GrWire, RestartTimeIsClampedToTwelveBits) {
  wire::OpenMessage open;
  open.as = 65000;
  open.gr_enabled = true;
  open.gr_restart_time = 0xFFFF;  // only the low 12 bits fit the field
  const auto bytes = wire::encode(open);
  std::size_t consumed = 0;
  const auto decoded = wire::decode(bytes, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<wire::OpenMessage>(*decoded).gr_restart_time, 0x0FFF);
}

TEST(GrWire, EndOfRibIsTheMinimalUpdate) {
  // RFC 4724 §2: 23 bytes — header, zero withdrawn length, zero attribute
  // length, no NLRI.
  const auto bytes = wire::encode(wire::UpdateMessage{});
  ASSERT_EQ(bytes.size(), 23u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(bytes[i], 0xFF);
  EXPECT_EQ(bytes[16], 0x00);
  EXPECT_EQ(bytes[17], 23);
  EXPECT_EQ(bytes[18], 2);     // type UPDATE
  EXPECT_EQ(bytes[19], 0x00);  // withdrawn routes length
  EXPECT_EQ(bytes[20], 0x00);
  EXPECT_EQ(bytes[21], 0x00);  // total path attribute length
  EXPECT_EQ(bytes[22], 0x00);

  EXPECT_TRUE(wire::is_end_of_rib(wire::UpdateMessage{}));
  wire::UpdateMessage announce;
  announce.nlri.push_back(pfx("10.0.0.0/24"));
  EXPECT_FALSE(wire::is_end_of_rib(announce));
  wire::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(pfx("10.0.0.0/24"));
  EXPECT_FALSE(wire::is_end_of_rib(withdraw));
  wire::UpdateMessage v6;
  v6.nlri_v6.push_back(pfx("2001:db8::/32"));
  EXPECT_FALSE(wire::is_end_of_rib(v6));
}

// ---------------------------------------------------------------------------
// Rib: stale marking, refresh-in-place, deterministic sweep.
// ---------------------------------------------------------------------------

bgp::Update announce(const char* prefix, bgp::AsPath path) {
  bgp::Update update;
  update.prefix = pfx(prefix);
  update.path = std::move(path);
  return update;
}

TEST(GrRib, MarkRefreshAndSweep) {
  bgp::Rib rib;
  rib.apply(announce("10.0.0.0/24", {65010, 1}));
  rib.apply(announce("10.0.1.0/24", {65010, 2}));
  rib.apply(announce("10.0.2.0/24", {65010, 3}));
  EXPECT_EQ(rib.stale_count(), 0u);

  rib.mark_all_stale();
  EXPECT_EQ(rib.stale_count(), 3u);
  EXPECT_EQ(rib.size(), 3u);  // retained, not purged

  // An identical re-advertisement refreshes in place...
  EXPECT_TRUE(rib.refresh(pfx("10.0.0.0/24")));
  EXPECT_FALSE(rib.refresh(pfx("10.9.9.0/24")));  // unknown prefix
  // ...a changed one replaces the entry with a fresh route.
  rib.apply(announce("10.0.1.0/24", {65010, 99}));
  EXPECT_EQ(rib.stale_count(), 1u);

  const auto swept = rib.sweep_stale();
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], pfx("10.0.2.0/24"));
  EXPECT_EQ(rib.size(), 2u);
  EXPECT_EQ(rib.stale_count(), 0u);
  EXPECT_EQ(rib.find(pfx("10.0.2.0/24")), nullptr);
  ASSERT_NE(rib.find(pfx("10.0.0.0/24")), nullptr);
  EXPECT_FALSE(rib.find(pfx("10.0.0.0/24"))->stale);
}

TEST(GrRib, SweepReturnsSortedPrefixes) {
  bgp::Rib rib;
  rib.apply(announce("10.0.9.0/24", {1}));
  rib.apply(announce("10.0.1.0/24", {1}));
  rib.apply(announce("10.0.5.0/24", {1}));
  rib.mark_all_stale();
  const auto swept = rib.sweep_stale();
  ASSERT_EQ(swept.size(), 3u);
  EXPECT_TRUE(std::is_sorted(swept.begin(), swept.end()));
}

// ---------------------------------------------------------------------------
// Daemon: the helper-mode FSM over the in-memory transport.
// ---------------------------------------------------------------------------

struct Harness {
  Transport transport;
  MrtStore store;
  filt::FilterTable filters;
  BgpDaemon daemon{1, 65000, transport, &filters, &store};
  FakePeer peer{65010, transport};

  void establish() {
    daemon.start(0);
    peer.poll();       // peer answers OPEN + KEEPALIVE
    daemon.poll(1);    // daemon handles both, replies KEEPALIVE
    peer.poll();       // peer sees the KEEPALIVE
    daemon.tick(1);
  }
};

TEST(GrSession, NegotiatedWhenBothSidesAdvertise) {
  Harness h;
  h.peer.enable_graceful_restart(120);
  h.establish();
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_TRUE(h.daemon.gr_negotiated());
  EXPECT_EQ(h.daemon.stats().gr_negotiated, 1u);
  EXPECT_EQ(h.daemon.stats().eor_sent, 1u);  // our table is empty: EoR now
}

TEST(GrSession, NotNegotiatedWithPlainPeer) {
  Harness h;  // FakePeer defaults to no GR capability
  h.establish();
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_FALSE(h.daemon.gr_negotiated());
  EXPECT_EQ(h.daemon.stats().gr_negotiated, 0u);
  EXPECT_EQ(h.daemon.stats().eor_sent, 0u);
}

TEST(GrSession, NotNegotiatedWhenLocallyDisabled) {
  Harness h;
  GracefulRestartConfig gr;
  gr.enabled = false;
  h.daemon.set_graceful_restart(gr);
  h.peer.enable_graceful_restart(120);
  h.establish();
  EXPECT_FALSE(h.daemon.gr_negotiated());
}

TEST(GrSession, FlapResyncsByDeltaNotFullReplay) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);
  h.peer.enable_graceful_restart(120);
  h.establish();

  const auto u0 = announce("10.0.0.0/24", {65010, 1});
  const auto u1 = announce("10.0.1.0/24", {65010, 2});
  const auto u2 = announce("10.0.2.0/24", {65010, 3});
  h.peer.send_update(u0);
  h.peer.send_update(u1);
  h.peer.send_update(u2);
  h.daemon.poll(5);
  ASSERT_EQ(h.daemon.rib().size(), 3u);
  ASSERT_EQ(h.daemon.stats().updates_stored, 3u);

  // The peer flaps (hold expiry): the RIB is retained as stale, not purged.
  h.daemon.tick(200);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_TRUE(h.daemon.gr_syncing());
  EXPECT_EQ(h.daemon.rib().size(), 3u);
  EXPECT_EQ(h.daemon.rib().stale_count(), 3u);
  EXPECT_EQ(h.daemon.stats().stale_retained, 3u);
  EXPECT_EQ(h.daemon.stale_deadline(), 200 + 120);

  // Reconnect: still no purge, no resync counted.
  h.daemon.tick(201);
  EXPECT_EQ(h.daemon.state(), SessionState::kOpenSent);
  EXPECT_EQ(h.daemon.rib().size(), 3u);
  EXPECT_EQ(h.daemon.stats().resyncs, 0u);

  h.peer.poll();
  h.daemon.poll(202);
  ASSERT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_EQ(h.daemon.stats().gr_negotiated, 2u);

  // The restarted peer re-advertises: u0 byte-identical (refreshed in
  // place, nothing stored or mirrored again), u1 with a new path (a real
  // delta), u2 not at all (swept as a synthetic withdrawal at EoR).
  h.peer.send_update(u0);
  auto changed = u1;
  changed.path = bgp::AsPath{65010, 42};
  h.peer.send_update(changed);
  h.peer.send_end_of_rib();
  h.daemon.poll(203);

  EXPECT_FALSE(h.daemon.gr_syncing());
  EXPECT_EQ(h.daemon.stale_deadline(), 0u);
  EXPECT_EQ(h.daemon.stats().eor_received, 1u);
  EXPECT_EQ(h.daemon.stats().stale_refreshed, 1u);  // u0 suppressed
  EXPECT_EQ(h.daemon.stats().stale_swept, 1u);      // u2 withdrawn
  EXPECT_EQ(h.daemon.stats().resyncs, 0u);          // never a full replay

  // The surviving RIB is the delta-applied table.
  EXPECT_EQ(h.daemon.rib().size(), 2u);
  EXPECT_EQ(h.daemon.rib().stale_count(), 0u);
  ASSERT_NE(h.daemon.rib().find(pfx("10.0.0.0/24")), nullptr);
  EXPECT_EQ(h.daemon.rib().find(pfx("10.0.0.0/24"))->path, u0.path);
  ASSERT_NE(h.daemon.rib().find(pfx("10.0.1.0/24")), nullptr);
  EXPECT_EQ(h.daemon.rib().find(pfx("10.0.1.0/24"))->path, changed.path);
  EXPECT_EQ(h.daemon.rib().find(pfx("10.0.2.0/24")), nullptr);

  // Store cost of the flap: the changed route plus the synthetic
  // withdrawal — NOT three re-stored routes (the flap cost a delta).
  EXPECT_EQ(h.daemon.stats().updates_stored, 5u);
  // updates_received counts wire traffic: 3 initial + 2 re-advertised.
  EXPECT_EQ(h.daemon.stats().updates_received, 5u);
}

TEST(GrSession, StaleWindowExpiryFlushesTheTable) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);
  h.peer.enable_graceful_restart(120);
  h.establish();
  h.peer.send_update(announce("10.0.0.0/24", {65010, 1}));
  h.peer.send_update(announce("10.0.1.0/24", {65010, 2}));
  h.daemon.poll(5);
  ASSERT_EQ(h.daemon.rib().size(), 2u);

  h.daemon.tick(200);  // flap: stale retained, deadline 320
  ASSERT_TRUE(h.daemon.gr_syncing());
  // The peer never comes back; the restart window closes.
  h.daemon.tick(321);
  EXPECT_FALSE(h.daemon.gr_syncing());
  EXPECT_EQ(h.daemon.rib().size(), 0u);
  EXPECT_EQ(h.daemon.stats().stale_expired, 2u);
  EXPECT_EQ(h.daemon.stats().stale_swept, 0u);
}

TEST(GrSession, ShorterPeerRestartTimeBoundsTheWindow) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);
  h.peer.enable_graceful_restart(30);  // the peer promises a fast restart
  h.establish();
  h.peer.send_update(announce("10.0.0.0/24", {65010, 1}));
  h.daemon.poll(5);
  h.daemon.tick(200);
  EXPECT_EQ(h.daemon.stale_deadline(), 200 + 30);
}

TEST(GrSession, PeerReturningWithoutGrFlushesStale) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);
  h.peer.enable_graceful_restart(120);
  h.establish();
  h.peer.send_update(announce("10.0.0.0/24", {65010, 1}));
  h.daemon.poll(5);

  h.daemon.tick(200);  // flap with GR: stale retained
  ASSERT_TRUE(h.daemon.gr_syncing());
  h.daemon.tick(201);  // reconnect

  // The peer comes back *without* the capability (new software, say): the
  // stale table cannot be trusted to resync — flush it and count a resync.
  FakePeer plain(65010, h.transport);
  plain.poll();
  h.daemon.poll(202);
  ASSERT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_FALSE(h.daemon.gr_negotiated());
  EXPECT_FALSE(h.daemon.gr_syncing());
  EXPECT_EQ(h.daemon.rib().size(), 0u);
  EXPECT_EQ(h.daemon.stats().stale_expired, 1u);
  EXPECT_EQ(h.daemon.stats().resyncs, 1u);
}

TEST(GrSession, NonGrFlapKeepsLegacyPurgeAndReplay) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);
  h.establish();  // plain peer
  h.peer.send_update(announce("10.0.0.0/24", {65010, 1}));
  h.daemon.poll(5);
  ASSERT_EQ(h.daemon.rib().size(), 1u);

  h.daemon.tick(200);
  EXPECT_FALSE(h.daemon.gr_syncing());
  h.daemon.tick(201);  // reconnect purges for replay
  EXPECT_EQ(h.daemon.rib().size(), 0u);
  EXPECT_EQ(h.daemon.stats().resyncs, 1u);
  EXPECT_EQ(h.daemon.stats().stale_retained, 0u);
}

}  // namespace
}  // namespace gill::daemon
