#include <gtest/gtest.h>

#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/as_relationships.hpp"
#include "usecases/data_sample.hpp"
#include "usecases/detectors.hpp"
#include "usecases/failure_localization.hpp"
#include "usecases/hijack.hpp"

namespace gill::uc {
namespace {

using sim::GroundTruth;
using sim::Internet;
using sim::InternetConfig;

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

/// The Fig. 5 world with all four VPs.
struct Fig5World {
  topo::AsTopology topology = topo::fig5_topology();
  Internet internet;
  net::Prefix p1 = pfx("10.4.1.0/24");
  net::Prefix p2 = pfx("10.4.2.0/24");
  net::Prefix p3 = pfx("10.6.3.0/24");

  static InternetConfig config() {
    InternetConfig c;
    c.vp_hosts = {2, 6, 4, 5};
    c.prefixes.resize(8);
    c.prefixes[4] = {net::Prefix::parse("10.4.1.0/24").value(),
                     net::Prefix::parse("10.4.2.0/24").value()};
    c.prefixes[6] = {net::Prefix::parse("10.6.3.0/24").value()};
    return c;
  }
  Fig5World() : internet(topology, config()) {}

  DataSample full_sample(const bgp::UpdateStream& stream) const {
    DataSample sample;
    sample.updates = stream;
    sample.ribs = internet.rib_dump(0);
    return sample;
  }
};

// ---------------------------------------------------------------------------
// OriginTable
// ---------------------------------------------------------------------------

TEST(OriginTable, MajorityVoteFromRib) {
  Fig5World world;
  const auto table = OriginTable::from_rib(world.internet.rib_dump(0));
  EXPECT_EQ(table.origin_of(world.p1), 4u);
  EXPECT_EQ(table.origin_of(world.p3), 6u);
  EXPECT_EQ(table.origin_of(pfx("10.9.9.0/24")), 0u);  // unknown
}

// ---------------------------------------------------------------------------
// Use case I: transient paths
// ---------------------------------------------------------------------------

TEST(TransientPaths, ShortLivedRouteDetected) {
  DataSample sample;
  bgp::Update a;
  a.vp = 1;
  a.time = 0;
  a.prefix = pfx("10.0.0.0/24");
  a.path = bgp::AsPath{1, 2};
  sample.updates.push(a);
  bgp::Update transient = a;
  transient.time = 100;
  transient.path = bgp::AsPath{1, 3, 2};
  sample.updates.push(transient);
  bgp::Update final_route = a;
  final_route.time = 160;  // transient lived 60 s < 300 s
  final_route.path = bgp::AsPath{1, 4, 2};
  sample.updates.push(final_route);
  sample.updates.sort();

  const auto transients = detect_transient_paths(sample);
  // The first route (0 -> 100 = 100 s) and the transient (100 -> 160).
  ASSERT_EQ(transients.size(), 2u);
  EXPECT_EQ(transients[1].appeared, 100);
  EXPECT_EQ(transients[1].replaced, 160);
}

TEST(TransientPaths, LongLivedRouteNotDetected) {
  DataSample sample;
  bgp::Update a;
  a.vp = 1;
  a.time = 0;
  a.prefix = pfx("10.0.0.0/24");
  a.path = bgp::AsPath{1, 2};
  sample.updates.push(a);
  bgp::Update later = a;
  later.time = 1000;  // 1000 s >= 300 s
  later.path = bgp::AsPath{1, 3, 2};
  sample.updates.push(later);
  sample.updates.sort();
  EXPECT_TRUE(detect_transient_paths(sample).empty());
}

TEST(TransientPaths, ScoreAgainstSimulatedGroundTruth) {
  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 14});
  InternetConfig config;
  for (bgp::AsNumber as = 0; as < 300; as += 5) config.vp_hosts.push_back(as);
  config.path_exploration_probability = 0.5;
  config.rng_seed = 15;
  Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 16;
  const auto stream = sim::generate_workload(internet, 0, workload);

  DataSample all;
  all.updates = stream;
  const double score =
      transient_detection_score(all, internet.ground_truth());
  EXPECT_GT(score, 0.9);  // full data detects nearly all transients

  DataSample empty;
  EXPECT_LT(transient_detection_score(empty, internet.ground_truth()), 0.01);
}

// ---------------------------------------------------------------------------
// Use case II: MOAS
// ---------------------------------------------------------------------------

TEST(Moas, DetectedWhenBothOriginsVisible) {
  Fig5World world;
  const auto table = OriginTable::from_rib(world.internet.rib_dump(0));
  const auto stream = world.internet.start_moas(7, world.p3, 100);
  const auto sample = world.full_sample(stream);
  const auto detected = detect_moas(sample, table);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], world.p3);
  EXPECT_DOUBLE_EQ(
      moas_detection_score(sample, table, world.internet.ground_truth()),
      1.0);
}

TEST(Moas, InvisibleWithoutTheRightVp) {
  Fig5World world;
  const auto table = OriginTable::from_rib(world.internet.rib_dump(0));
  const auto stream = world.internet.start_moas(7, world.p3, 100);
  // Sample only VP1 (AS2), which keeps the legitimate route.
  DataSample sample;
  sample.updates = stream.by_vp(0);
  sample.ribs = world.internet.rib_dump_vp(0, 0);
  EXPECT_DOUBLE_EQ(
      moas_detection_score(sample, table, world.internet.ground_truth()),
      0.0);
}

// ---------------------------------------------------------------------------
// Use case III: topology mapping
// ---------------------------------------------------------------------------

TEST(TopologyMapping, Fig1StyleVisibility) {
  Fig5World world;
  DataSample all;
  all.ribs = world.internet.rib_dump(0);
  const auto links = observed_links(all);
  // The 5-6 peering is visible only via VP4's route "5 6".
  EXPECT_TRUE(links.contains(undirected_link_key(5, 6)));

  DataSample without_vp4;
  for (bgp::VpId vp = 0; vp < 3; ++vp) {
    without_vp4.ribs.append(world.internet.rib_dump_vp(vp, 0));
  }
  EXPECT_FALSE(
      observed_links(without_vp4).contains(undirected_link_key(5, 6)));

  const double score = topology_mapping_score(without_vp4, links);
  EXPECT_LT(score, 1.0);
  EXPECT_GT(score, 0.5);
}

// ---------------------------------------------------------------------------
// Use cases IV + V: communities
// ---------------------------------------------------------------------------

TEST(Communities, ActionAndUnchangedPathDetection) {
  Fig5World world;
  DataSample sample;
  sample.ribs = world.internet.rib_dump(0);
  const auto stream = world.internet.change_community(
      world.p3, bgp::Community(6, 0x0640), /*is_action=*/true, 500);
  sample.updates = stream;

  EXPECT_DOUBLE_EQ(
      action_community_score(sample, world.internet.ground_truth()), 1.0);
  const auto unchanged = detect_unchanged_path_updates(sample);
  EXPECT_GE(unchanged.size(), 3u);  // VP1, VP2, VP3 (and VP4) re-announce
  EXPECT_DOUBLE_EQ(
      unchanged_path_score(sample, world.internet.ground_truth()), 1.0);

  // Without the updates, nothing is detectable.
  DataSample ribs_only;
  ribs_only.ribs = sample.ribs;
  EXPECT_DOUBLE_EQ(
      action_community_score(ribs_only, world.internet.ground_truth()), 0.0);
}

// ---------------------------------------------------------------------------
// Failure localization
// ---------------------------------------------------------------------------

TEST(FailureLocalization, Fig5PeeringFailureLocalized) {
  Fig5World world;
  const auto stream = world.internet.fail_link(2, 4, 1000);
  DataSample sample;
  sample.ribs = world.internet.rib_dump(0);
  // rib_dump was taken *after* the failure: rebuild the world instead.
  Fig5World fresh;
  sample.ribs = fresh.internet.rib_dump(0);
  sample.updates = stream;

  const auto result = localize_failure(sample, 1000);
  ASSERT_TRUE(result.localized());
  EXPECT_EQ(result.candidates[0], undirected_link_key(2, 4));

  const double score = failure_localization_score(
      sample, world.internet.ground_truth(), true);
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST(FailureLocalization, AmbiguousWithoutEnoughVps) {
  Fig5World world;
  const auto stream = world.internet.fail_link(2, 4, 1000);
  Fig5World fresh;
  DataSample sample;
  // Only VP2 (AS6): its old path "6 2 4" loses two links at once
  // ("6 2 4" -> "6 2 1 4" removes only 2-4... so use VP3 instead, whose
  // reaction "4 2 6" -> "4 1 2 6" removes link 4-2 only as well).
  sample.ribs = fresh.internet.rib_dump_vp(1, 0);
  sample.updates = stream.by_vp(1);
  const auto result = localize_failure(sample, 1000);
  // VP2 alone still pins the failed link here (its delta is exactly 2-4);
  // the property checked: candidates never contain links outside old paths.
  for (const auto key : result.candidates) {
    EXPECT_EQ(key, undirected_link_key(2, 4));
  }
}

// ---------------------------------------------------------------------------
// Hijack visibility + DFOH-lite
// ---------------------------------------------------------------------------

TEST(HijackVisibility, OnlyNearbyVpSeesFig5Hijack) {
  Fig5World world;
  const auto stream = world.internet.start_hijack(7, world.p3, 1, 500);
  DataSample with_vp4;
  with_vp4.updates = stream;
  EXPECT_DOUBLE_EQ(
      hijack_visibility_score(with_vp4, world.internet.ground_truth()), 1.0);

  DataSample without_vp4;
  without_vp4.updates = stream.by_vp(0);  // VP1 saw nothing
  EXPECT_DOUBLE_EQ(
      hijack_visibility_score(without_vp4, world.internet.ground_truth()),
      0.0);
}

TEST(Dfoh, ForgedLinkFlaggedLegitimateNewLinkNot) {
  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 17});
  InternetConfig config;
  for (bgp::AsNumber as = 0; as < 400; as += 4) config.vp_hosts.push_back(as);
  config.rng_seed = 18;
  Internet internet(topology, config);
  const auto rib = internet.rib_dump(0);
  const BaselineView baseline = BaselineView::from_stream(rib);

  // A forged-origin hijack by a random distant stub.
  bgp::AsNumber victim = 350;
  const auto victim_prefix = internet.prefixes()[victim][0];
  bgp::AsNumber attacker = 399;
  const auto hijack_stream =
      internet.start_hijack(attacker, victim_prefix, 1, 100);

  DfohDetector detector(baseline);
  DataSample sample;
  sample.updates = hijack_stream;
  const auto cases = detector.scan(sample);
  if (!hijack_stream.empty()) {
    ASSERT_FALSE(cases.empty());
    const auto score = dfoh_score(cases, internet.ground_truth());
    EXPECT_GT(score.true_positive_rate, 0.5);
  }

  // A legitimate restoration re-announces existing links: nothing to flag.
  internet.clear_prefix_override(victim_prefix, 200);
  const auto fail_stream = internet.fail_link(topology.links()[0].a,
                                              topology.links()[0].b, 300);
  const auto restore_stream = internet.restore_link(topology.links()[0].a,
                                                    topology.links()[0].b, 600);
  DataSample legit;
  legit.updates = fail_stream;
  legit.updates.append(restore_stream);
  const auto legit_cases = detector.scan(legit);
  std::size_t flagged = 0;
  for (const auto& c : legit_cases) {
    if (c.flagged) ++flagged;
  }
  // Failure reroutes may expose genuinely new (but real) origin-adjacent
  // links; they must mostly not look forged.
  EXPECT_LE(flagged, legit_cases.size() / 2 + 1);
}

TEST(Dfoh, BaselineViewBasics) {
  bgp::UpdateStream stream;
  bgp::Update u;
  u.vp = 0;
  u.prefix = pfx("10.0.0.0/24");
  u.path = bgp::AsPath{1, 2, 3};
  stream.push(u);
  const auto view = BaselineView::from_stream(stream);
  EXPECT_TRUE(view.has_link(1, 2));
  EXPECT_TRUE(view.has_link(2, 1));
  EXPECT_FALSE(view.has_link(1, 3));
  EXPECT_EQ(view.degree(2), 2u);
  EXPECT_EQ(view.common_neighbors(1, 3), 1u);
  EXPECT_EQ(view.distance(1, 3), 2u);
  EXPECT_EQ(view.distance(1, 99), 4u);  // capped
}

// ---------------------------------------------------------------------------
// AS relationships + customer cones
// ---------------------------------------------------------------------------

TEST(AsRelationships, InferenceAccuracyOnSimulatedData) {
  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 20});
  InternetConfig config;
  for (bgp::AsNumber as = 0; as < 400; as += 3) config.vp_hosts.push_back(as);
  Internet internet(topology, config);
  DataSample sample;
  sample.ribs = internet.rib_dump(0);

  const auto inferred = infer_relationships(sample);
  EXPECT_GT(inferred.size(), 200u);
  const auto validation = validate_relationships(inferred, topology);
  EXPECT_EQ(validation.inferred, inferred.size());
  EXPECT_GT(validation.evaluable, 200u);
  // c2p orientation must be essentially perfect; p2p recall is the known
  // hard part of relationship inference (the paper's 97% TPR is measured
  // on the IRR-validated, c2p-dominated subset).
  EXPECT_GT(validation.accuracy(), 0.7);
  EXPECT_GT(validation.c2p_accuracy(), 0.95);
  EXPECT_GT(validation.p2p_accuracy(), 0.3);
}

TEST(AsRelationships, MoreVpsMoreLinks) {
  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 21});
  InternetConfig few_config;
  for (bgp::AsNumber as = 0; as < 400; as += 40) {
    few_config.vp_hosts.push_back(as);
  }
  Internet few(topology, few_config);
  InternetConfig many_config;
  for (bgp::AsNumber as = 0; as < 400; as += 4) {
    many_config.vp_hosts.push_back(as);
  }
  Internet many(topology, many_config);

  DataSample few_sample, many_sample;
  few_sample.ribs = few.rib_dump(0);
  many_sample.ribs = many.rib_dump(0);
  EXPECT_GT(infer_relationships(many_sample).size(),
            infer_relationships(few_sample).size());
}

TEST(AsRelationships, CustomerConesFollowC2pDag) {
  InferredRelationships inferred;
  auto add = [&](bgp::AsNumber customer, bgp::AsNumber provider) {
    InferredRelationship entry;
    entry.a = customer;
    entry.b = provider;
    entry.rel = topo::Relationship::kCustomerToProvider;
    inferred.index[undirected_link_key(customer, provider)] =
        inferred.entries.size();
    inferred.entries.push_back(entry);
  };
  add(2, 1);
  add(3, 1);
  add(4, 2);
  add(4, 3);  // diamond again
  const auto cones = customer_cones(inferred);
  EXPECT_EQ(cones.at(1), 4u);
  EXPECT_EQ(cones.at(2), 2u);
  EXPECT_EQ(cones.at(4), 1u);
}

}  // namespace
}  // namespace gill::uc
