#include <gtest/gtest.h>

#include <random>

#include "netbase/ip.hpp"
#include "netbase/prefix.hpp"
#include "netbase/prefix_alloc.hpp"
#include "netbase/prefix_trie.hpp"

namespace gill::net {
namespace {

TEST(IpAddress, ParsesAndFormatsV4) {
  const auto a = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->str(), "192.0.2.1");
  EXPECT_EQ(a->v4_value(), 0xC0000201u);
}

TEST(IpAddress, RejectsMalformedV4) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
}

TEST(IpAddress, ParsesAndFormatsV6) {
  const auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->str(), "2001:db8::1");

  const auto b = IpAddress::parse("::");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->str(), "::");

  const auto c = IpAddress::parse("fe80:0:0:0:1:2:3:4");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->str(), "fe80::1:2:3:4");
}

TEST(IpAddress, RejectsMalformedV6) {
  EXPECT_FALSE(IpAddress::parse(":::").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("2001::db8::1").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
}

TEST(IpAddress, BitAccess) {
  const auto a = IpAddress::v4(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
}

TEST(IpAddress, OrderingIsByFamilyThenBytes) {
  const auto v4 = IpAddress::parse("255.255.255.255");
  const auto v6 = IpAddress::parse("::1");
  ASSERT_TRUE(v4 && v6);
  EXPECT_LT(*v4, *v6);  // all v4 sort before v6
}

TEST(Prefix, ParseAndCanonicalize) {
  const auto p = Prefix::parse("10.1.2.3/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->str(), "10.0.0.0/8");  // host bits zeroed
  EXPECT_EQ(p->length(), 8u);
}

TEST(Prefix, RejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("/8").has_value());
  EXPECT_FALSE(Prefix::parse("2001:db8::/129").has_value());
}

TEST(Prefix, ContainsAndCovers) {
  const auto p8 = Prefix::parse("10.0.0.0/8").value();
  const auto p24 = Prefix::parse("10.1.1.0/24").value();
  const auto other = Prefix::parse("11.0.0.0/8").value();
  EXPECT_TRUE(p8.covers(p24));
  EXPECT_FALSE(p24.covers(p8));
  EXPECT_TRUE(p8.covers(p8));
  EXPECT_FALSE(p8.covers(other));
  EXPECT_TRUE(p8.contains(IpAddress::parse("10.200.3.4").value()));
  EXPECT_FALSE(p8.contains(IpAddress::parse("11.0.0.1").value()));
  EXPECT_FALSE(p8.contains(IpAddress::parse("::1").value()));
}

TEST(Prefix, DefaultRouteContainsEverythingV4) {
  const Prefix def;  // 0.0.0.0/0
  EXPECT_TRUE(def.contains(IpAddress::parse("203.0.113.9").value()));
}

class PrefixRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrefixRoundTrip, ParseFormatParse) {
  const auto p = Prefix::parse(GetParam());
  ASSERT_TRUE(p.has_value()) << GetParam();
  const auto again = Prefix::parse(p->str());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*p, *again);
}

INSTANTIATE_TEST_SUITE_P(Canonical, PrefixRoundTrip,
                         ::testing::Values("0.0.0.0/0", "10.0.0.0/8",
                                           "192.0.2.0/24", "203.0.113.255/32",
                                           "::/0", "2001:db8::/32",
                                           "fd00::/8",
                                           "2001:db8:1:2:3:4:5:6/128"));

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8").value(), 1);
  trie.insert(Prefix::parse("10.1.0.0/16").value(), 2);
  trie.insert(Prefix::parse("10.1.1.0/24").value(), 3);
  EXPECT_EQ(trie.size(), 3u);

  EXPECT_EQ(*trie.find(Prefix::parse("10.1.0.0/16").value()), 2);
  EXPECT_EQ(trie.find(Prefix::parse("10.2.0.0/16").value()), nullptr);

  const auto match = trie.longest_match(Prefix::parse("10.1.1.128/25").value());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first.str(), "10.1.1.0/24");
  EXPECT_EQ(*match->second, 3);

  const auto shallow = trie.longest_match(Prefix::parse("10.9.0.0/16").value());
  ASSERT_TRUE(shallow.has_value());
  EXPECT_EQ(shallow->first.str(), "10.0.0.0/8");

  EXPECT_FALSE(
      trie.longest_match(Prefix::parse("11.0.0.0/8").value()).has_value());
}

TEST(PrefixTrie, EraseAndIterate) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8").value(), 1);
  trie.insert(Prefix::parse("2001:db8::/32").value(), 2);
  EXPECT_TRUE(trie.erase(Prefix::parse("10.0.0.0/8").value()));
  EXPECT_FALSE(trie.erase(Prefix::parse("10.0.0.0/8").value()));
  int visited = 0;
  trie.for_each([&](const Prefix& p, int v) {
    EXPECT_EQ(p.str(), "2001:db8::/32");
    EXPECT_EQ(v, 2);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

TEST(PrefixTrie, ForEachReconstructsPrefixes) {
  PrefixTrie<int> trie;
  const auto p = Prefix::parse("192.168.128.0/18").value();
  trie.insert(p, 7);
  bool seen = false;
  trie.for_each([&](const Prefix& q, int v) {
    EXPECT_EQ(q, p);
    EXPECT_EQ(v, 7);
    seen = true;
  });
  EXPECT_TRUE(seen);
}

TEST(PrefixAllocator, SlotsAreUnique) {
  std::set<Prefix> seen;
  for (std::uint32_t i = 0; i < 70000; ++i) {
    EXPECT_TRUE(seen.insert(PrefixAllocator::v4_slot(i)).second) << i;
  }
}

TEST(PrefixAllocator, CountsAreHeavyTailed) {
  std::mt19937_64 rng(7);
  std::size_t ones = 0;
  std::size_t total = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const unsigned c = PrefixAllocator::sample_prefix_count(rng);
    ASSERT_GE(c, 1u);
    ASSERT_LE(c, 64u);
    if (c == 1) ++ones;
    total += c;
  }
  // Power law with exponent 2.1: most ASes announce exactly one prefix but
  // the mean is noticeably above 1.
  EXPECT_GT(static_cast<double>(ones) / samples, 0.5);
  EXPECT_GT(static_cast<double>(total) / samples, 1.2);
}

TEST(PrefixAllocator, AssignProducesDisjointRuns) {
  std::mt19937_64 rng(3);
  const auto assigned = PrefixAllocator::assign(500, rng);
  ASSERT_EQ(assigned.size(), 500u);
  std::set<Prefix> seen;
  for (const auto& list : assigned) {
    ASSERT_FALSE(list.empty());
    for (const auto& p : list) EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(Hashing, DistinctPrefixesHashDifferently) {
  // Not a guarantee, but collisions among a small canonical set would make
  // every hash map in the system suspect.
  std::set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(hash_value(PrefixAllocator::v4_slot(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace gill::net
