// Overload control (DESIGN.md §11): the token bucket and accept governor
// in isolation, TcpTransport's watermark backpressure over a real loopback
// socket (EPOLLIN disarmed -> kernel window closes -> bounded queue), and
// the Platform's memory-watermark degraded mode (defer refreshes, shed the
// lowest-volume VPs, re-admit on recovery).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include "collector/platform.hpp"
#include "net/event_loop.hpp"
#include "net/overload.hpp"
#include "net/tcp_transport.hpp"

namespace gill::net {
namespace {

// ---------------------------------------------------------------------------
// TokenBucket.
// ---------------------------------------------------------------------------

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket(0, 0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.spend(1e9, 0));
  EXPECT_TRUE(bucket.try_take(1e9, 0));
  EXPECT_FALSE(bucket.in_debt(0));
}

TEST(TokenBucket, TryTakeRefusesBeyondBurst) {
  TokenBucket bucket(/*rate=*/100, /*burst=*/10);
  EXPECT_TRUE(bucket.try_take(10, 1000));  // the full burst
  EXPECT_FALSE(bucket.try_take(1, 1000));  // empty now
  // 50 ms at 100/s refills 5 tokens.
  EXPECT_TRUE(bucket.try_take(5, 1050));
  EXPECT_FALSE(bucket.try_take(1, 1050));
}

TEST(TokenBucket, SpendRunsIntoDebtAndRefillsOut) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/100);
  // Bytes already read must be charged even when they overdraw.
  EXPECT_FALSE(bucket.spend(500, 1000));  // 100 - 500 = -400: stop reading
  EXPECT_TRUE(bucket.in_debt(1000));
  EXPECT_TRUE(bucket.in_debt(1300));   // -400 + 300 = -100
  EXPECT_FALSE(bucket.in_debt(1500));  // -400 + 500 = +100
  EXPECT_TRUE(bucket.spend(50, 1500));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/100);
  EXPECT_FALSE(bucket.spend(150, 0));  // overdrawn straight into debt
  EXPECT_TRUE(bucket.in_debt(0));
  EXPECT_TRUE(bucket.full(100000));  // a long idle: capped, not unbounded
  EXPECT_LE(bucket.tokens(), 100.0);
}

TEST(TokenBucket, BurstDefaultsToOneSecondOfRate) {
  TokenBucket bucket(/*rate=*/64, /*burst=*/0);
  EXPECT_TRUE(bucket.try_take(64, 0));
  EXPECT_FALSE(bucket.try_take(1, 0));
}

// ---------------------------------------------------------------------------
// AcceptGovernor.
// ---------------------------------------------------------------------------

TEST(AcceptGovernor, PerSourceRateCapWithCounters) {
  metrics::Registry registry;
  AcceptGovernor governor(/*rate=*/2, /*burst=*/4, &registry);
  // The burst admits 4, then the source is refused...
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(governor.admit("10.0.0.1", 1000));
  EXPECT_FALSE(governor.admit("10.0.0.1", 1000));
  // ...while an unrelated source is untouched (per-source buckets).
  EXPECT_TRUE(governor.admit("10.0.0.2", 1000));
  // At 2/s the storm re-admits one connection per 500 ms.
  EXPECT_TRUE(governor.admit("10.0.0.1", 1500));
  EXPECT_FALSE(governor.admit("10.0.0.1", 1500));
  EXPECT_EQ(registry.counter_total("gill_overload_accepts_admitted_total"),
            6u);
  EXPECT_EQ(registry.counter_total("gill_overload_accepts_rejected_total"),
            2u);
  EXPECT_EQ(governor.tracked_sources(), 2u);
}

TEST(AcceptGovernor, ZeroRateAdmitsEverything) {
  metrics::Registry registry;
  AcceptGovernor governor(0, 0, &registry);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(governor.admit("10.0.0.1", 0));
  EXPECT_EQ(governor.tracked_sources(), 0u);  // no bookkeeping either
}

// ---------------------------------------------------------------------------
// TcpTransport watermark backpressure over a real loopback socket.
// ---------------------------------------------------------------------------

int raw_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  EXPECT_TRUE(rc == 0 || errno == EINPROGRESS);
  return fd;
}

/// A loopback byte firehose into a daemon-side transport with ingest
/// limits: no BGP machinery, just raw flow control.
struct FirehoseHarness {
  EventLoop loop;
  metrics::Registry registry;
  TcpListener listener{loop, &registry};
  std::unique_ptr<TcpTransport> server;
  int client_fd = -1;

  explicit FirehoseHarness(const IngestLimits& limits) {
    EXPECT_TRUE(listener.listen(
        "127.0.0.1", 0, [this, limits](int fd, std::string, std::uint16_t) {
          server = std::make_unique<TcpTransport>(loop, Role::kDaemonSide,
                                                  &registry);
          server->set_ingest_limits(limits);
          server->adopt(fd);
        }));
    client_fd = raw_client(listener.port());
    for (int i = 0; i < 400 && !server; ++i) loop.run_once(2);
    EXPECT_TRUE(server != nullptr);
  }

  ~FirehoseHarness() {
    if (client_fd >= 0) ::close(client_fd);
  }

  /// Pushes as much of `data` (starting at `offset`) as the socket takes.
  void send_some(const std::vector<std::uint8_t>& data, std::size_t& offset) {
    while (offset < data.size()) {
      const ssize_t n = ::send(client_fd, data.data() + offset,
                               data.size() - offset, MSG_NOSIGNAL);
      if (n <= 0) break;  // EAGAIN: the kernel window is full (backpressure)
      offset += static_cast<std::size_t>(n);
    }
  }
};

TEST(Backpressure, QueueWatermarkPausesReadsAndBoundsMemory) {
  IngestLimits limits;
  limits.queue_high_watermark = 8192;
  limits.queue_low_watermark = 2048;
  FirehoseHarness h(limits);

  const std::vector<std::uint8_t> payload(256 * 1024, 0xAB);
  std::size_t offset = 0;
  // Fill without consuming: the transport must pause instead of buffering
  // the whole 256 KiB.
  for (int i = 0; i < 400 && !h.server->reads_paused(); ++i) {
    h.send_some(payload, offset);
    h.loop.run_once(2);
  }
  ASSERT_TRUE(h.server->reads_paused());
  // Bound: the queue never exceeds the watermark by more than one read
  // chunk (the drain loop checks after every chunk).
  EXPECT_GE(h.server->inbound_queue_bytes(), limits.queue_high_watermark);
  EXPECT_LE(h.server->inbound_queue_bytes(),
            limits.queue_high_watermark + 16384);
  EXPECT_GE(h.registry.counter_total("gill_overload_read_pauses_total"), 1u);

  // Paused means paused: more client bytes do not grow the queue.
  const std::size_t held = h.server->inbound_queue_bytes();
  for (int i = 0; i < 50; ++i) {
    h.send_some(payload, offset);
    h.loop.run_once(2);
  }
  EXPECT_EQ(h.server->inbound_queue_bytes(), held);

  // The session layer drains; sync() re-arms reads and the rest flows.
  std::size_t consumed = 0;
  for (int i = 0; i < 4000 && consumed < payload.size(); ++i) {
    consumed += h.server->to_daemon.read().size();
    h.send_some(payload, offset);
    h.server->sync();
    h.loop.run_once(2);
  }
  EXPECT_EQ(consumed, payload.size());
  EXPECT_FALSE(h.server->reads_paused());
  EXPECT_GE(h.registry.counter_total("gill_overload_read_resumes_total"), 1u);
  EXPECT_EQ(h.registry.counter_total("gill_overload_read_pauses_total"),
            h.registry.counter_total("gill_overload_read_resumes_total"));
}

TEST(Backpressure, RateLimitPausesUntilTheBucketRefills) {
  IngestLimits limits;
  limits.max_bytes_per_sec = 512 * 1024;  // refills a 16 KiB debt in ~32 ms
  limits.burst_bytes = 4096;
  FirehoseHarness h(limits);

  const std::vector<std::uint8_t> payload(64 * 1024, 0xCD);
  std::size_t offset = 0;
  std::size_t consumed = 0;
  bool paused_once = false;
  for (int i = 0; i < 4000 && consumed < payload.size(); ++i) {
    h.send_some(payload, offset);
    consumed += h.server->to_daemon.read().size();  // drain eagerly
    paused_once = paused_once || h.server->reads_paused();
    h.server->sync();  // resumes only once the bucket is out of debt
    h.loop.run_once(2);
  }
  // The burst is far below one chunk, so the limiter must have tripped,
  // and refill must have let every byte through eventually.
  EXPECT_TRUE(paused_once);
  EXPECT_EQ(consumed, payload.size());
  EXPECT_GE(h.registry.counter_total("gill_overload_read_pauses_total"), 1u);
}

// ---------------------------------------------------------------------------
// Platform degraded mode: memory watermark -> defer refresh, shed, recover.
// ---------------------------------------------------------------------------

TEST(Degraded, MemoryWatermarkShedsLowestVolumeAndRecovers) {
  std::size_t memory = 100;
  metrics::Registry registry;
  collect::PlatformConfig config;
  config.registry = &registry;
  config.overload.mem_high_watermark = 1000;
  config.overload.mem_low_watermark = 500;
  config.overload.shed_per_step = 1;
  config.overload.max_shed_fraction = 0.5;
  config.overload.memory_probe = [&memory] { return memory; };
  collect::Platform platform(config);

  const auto vp0 = platform.add_peer(65001, 1);
  const auto vp1 = platform.add_peer(65002, 1);
  const auto vp2 = platform.add_peer(65003, 1);
  platform.step(1);
  // Distinct volumes make the shed ranking deterministic: vp2 is weakest.
  platform.remote(vp0).send_synthetic_burst(30, 10u << 24);
  platform.remote(vp1).send_synthetic_burst(20, 11u << 24);
  platform.remote(vp2).send_synthetic_burst(10, 12u << 24);
  platform.step(2);
  ASSERT_FALSE(platform.degraded());

  // Memory crosses the watermark: degraded mode, one peer shed per step,
  // pipeline refreshes deferred.
  memory = 2000;
  platform.step(3);
  EXPECT_TRUE(platform.degraded());
  EXPECT_EQ(platform.shed_count(), 1u);
  EXPECT_EQ(platform.health(vp2).status, collect::PeerStatus::kShed);
  EXPECT_EQ(platform.health(vp0).status, collect::PeerStatus::kHealthy);
  const std::string exposition = registry.expose_prometheus();
  EXPECT_NE(exposition.find("gill_overload_degraded 1"), std::string::npos);
  EXPECT_NE(exposition.find("gill_overload_memory_bytes 2000"),
            std::string::npos);

  // max_shed_fraction caps at half the population: floor(0.5 * 3) = 1.
  platform.step(4);
  EXPECT_EQ(platform.shed_count(), 1u);
  EXPECT_EQ(registry.counter_total("gill_overload_sheds_total"), 1u);

  // Operator plane reports the shed peer.
  const auto snapshot = platform.health_snapshot();
  EXPECT_EQ(snapshot.shed, 1u);
  EXPECT_NE(collect::format(snapshot).find("1 shed"), std::string::npos);
  EXPECT_NE(collect::to_json(snapshot).find("\"shed\":1"), std::string::npos);

  // A shed peer's updates stop flowing (frozen, not torn down).
  const auto frozen = platform.daemon_of(vp2).stats().updates_received;
  platform.remote(vp2).send_synthetic_burst(5, 13u << 24);
  platform.step(5);
  EXPECT_EQ(platform.daemon_of(vp2).stats().updates_received, frozen);

  // Recovery: memory drops below the low watermark; everything re-admits.
  memory = 100;
  platform.step(6);
  EXPECT_FALSE(platform.degraded());
  EXPECT_EQ(platform.shed_count(), 0u);
  EXPECT_EQ(registry.counter_total("gill_overload_readmits_total"), 1u);
  platform.step(7);  // the re-admitted session is still Established
  EXPECT_EQ(platform.health(vp2).status, collect::PeerStatus::kHealthy);
  // The frozen burst is delivered once polling resumes.
  EXPECT_EQ(platform.daemon_of(vp2).stats().updates_received, frozen + 5);
}

TEST(Degraded, PipelineRefreshIsDeferredUntilRecovery) {
  std::size_t memory = 100;
  metrics::Registry registry;
  collect::PlatformConfig config;
  config.registry = &registry;
  config.component1_refresh = 1;  // a refresh is due on every step
  config.overload.mem_high_watermark = 1000;
  config.overload.mem_low_watermark = 500;
  config.overload.memory_probe = [&memory] { return memory; };
  collect::Platform platform(config);

  const auto vp0 = platform.add_peer(65001, 1);
  const auto vp1 = platform.add_peer(65002, 1);
  (void)vp1;
  platform.step(1);
  platform.remote(vp0).send_synthetic_burst(30, 10u << 24);
  platform.step(2);  // healthy: the due refresh runs
  platform.wait_for_refresh();
  const auto healthy_generation = platform.filter_generation();

  // Degraded: a due refresh with a non-empty mirror is deferred, not run —
  // the pipeline is the most expensive thing to be doing out of memory.
  memory = 2000;
  platform.remote(vp0).send_synthetic_burst(30, 11u << 24);
  platform.step(3);
  ASSERT_TRUE(platform.degraded());
  EXPECT_GE(registry.counter_total("gill_overload_refreshes_deferred_total"),
            1u);
  platform.wait_for_refresh();
  EXPECT_EQ(platform.filter_generation(), healthy_generation);

  // Recovery re-enables the pipeline; the deferred refresh runs on the
  // retained mirror.
  memory = 100;
  platform.step(4);
  ASSERT_FALSE(platform.degraded());
  platform.step(5);
  platform.wait_for_refresh();
  EXPECT_GT(platform.filter_generation(), healthy_generation);
}

}  // namespace
}  // namespace gill::net
