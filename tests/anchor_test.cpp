#include <gtest/gtest.h>

#include "anchor/component2.hpp"
#include "anchor/event_inference.hpp"
#include "anchor/event_selection.hpp"
#include "anchor/scoring.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace gill::anchor {
namespace {

using sim::GroundTruth;

GroundTruth failure(bgp::Timestamp t, bgp::AsNumber a, bgp::AsNumber b,
                    std::size_t observers) {
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kLinkFailure;
  truth.time = t;
  truth.link_a = a;
  truth.link_b = b;
  for (std::size_t i = 0; i < observers; ++i) {
    truth.observers.push_back(static_cast<bgp::VpId>(i));
  }
  return truth;
}

TEST(EventSelection, VisibilityFilterExcludesGlobalAndInvisible) {
  std::vector<GroundTruth> truths;
  truths.push_back(failure(0, 1, 2, 0));    // invisible
  truths.push_back(failure(10, 1, 2, 3));   // local (3 of 10 VPs)
  truths.push_back(failure(20, 1, 2, 6));   // global (>= 50% of 10)
  EventSelectionConfig config;
  const auto candidates = candidate_events(truths, 10, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].type, AnchorEvent::Type::kOutage);
  EXPECT_EQ(candidates[0].start, 10);
}

TEST(EventSelection, GroundTruthKindsMapToEventTypes) {
  std::vector<GroundTruth> truths;
  GroundTruth restore = failure(0, 1, 2, 1);
  restore.kind = GroundTruth::Kind::kLinkRestore;
  truths.push_back(restore);
  GroundTruth moas = failure(5, 0, 0, 1);
  moas.kind = GroundTruth::Kind::kMoas;
  moas.origin = 3;
  moas.other_as = 4;
  truths.push_back(moas);
  const auto candidates = candidate_events(truths, 10, {});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].type, AnchorEvent::Type::kNewLink);
  EXPECT_EQ(candidates[1].type, AnchorEvent::Type::kOriginChange);
  EXPECT_EQ(candidates[1].as1, 3u);
  EXPECT_EQ(candidates[1].as2, 4u);
}

TEST(EventSelection, BalancedSelectionReducesBias) {
  // Build candidates dominated by one category pair.
  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 6});
  const auto categories = topo::classify_ases(topology);

  // Find a stub and a transit AS for crafting events.
  bgp::AsNumber stub = 0, transit = 0, tier1 = topology.tier1()[0];
  for (bgp::AsNumber as = 0; as < 500; ++as) {
    if (categories[as] == topo::AsCategory::kStub && stub == 0) stub = as;
    if (categories[as] == topo::AsCategory::kTransit1 && transit == 0) {
      transit = as;
    }
  }
  ASSERT_NE(stub, 0u);
  ASSERT_NE(transit, 0u);

  std::vector<AnchorEvent> candidates;
  for (int i = 0; i < 300; ++i) {  // overwhelming majority: stub-stub
    candidates.push_back(AnchorEvent{AnchorEvent::Type::kOutage,
                                     i * 10, i * 10 + 5, stub, stub});
  }
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(AnchorEvent{AnchorEvent::Type::kOutage,
                                     5000 + i * 10, 5000 + i * 10 + 5,
                                     transit, tier1});
  }

  EventSelectionConfig config;
  config.per_type_quota = 30;  // 2 per pair
  const auto balanced = select_events(candidates, categories, config);
  const auto matrix = selection_matrix(balanced, categories);
  const auto stub_index = static_cast<std::size_t>(topo::AsCategory::kStub) - 1;
  // The stub-stub share must be bounded, not ~97% as in the candidates.
  EXPECT_LT(matrix[stub_index][stub_index], 0.7);

  config.balanced = false;
  const auto random = select_events(candidates, categories, config);
  const auto random_matrix = selection_matrix(random, categories);
  EXPECT_GT(random_matrix[stub_index][stub_index], 0.8);
}

TEST(EventSelection, NonOverlappingFlagRejectsCollisions) {
  std::vector<AnchorEvent> candidates;
  for (int i = 0; i < 10; ++i) {
    // All ten candidates share one time window.
    candidates.push_back(
        AnchorEvent{AnchorEvent::Type::kOutage, 100, 200,
                    static_cast<bgp::AsNumber>(i),
                    static_cast<bgp::AsNumber>(i + 1)});
  }
  EventSelectionConfig config;
  config.balanced = false;
  config.per_type_quota = 10;
  config.require_non_overlapping = true;
  const auto selected = select_events(candidates, {}, config);
  EXPECT_EQ(selected.size(), 1u);  // only one fits

  config.require_non_overlapping = false;
  EXPECT_EQ(select_events(candidates, {}, config).size(), 10u);
}

TEST(EventSelection, EmptyCategoriesFallBackToRandom) {
  std::vector<AnchorEvent> candidates{
      AnchorEvent{AnchorEvent::Type::kOutage, 0, 5, 1, 2},
      AnchorEvent{AnchorEvent::Type::kNewLink, 10, 15, 3, 4},
  };
  EventSelectionConfig config;  // balanced by default
  const auto selected = select_events(candidates, {}, config);
  EXPECT_EQ(selected.size(), 2u);  // nothing silently dropped
}

TEST(EventSelection, SelectionMatrixSumsToOne) {
  const auto topology = topo::generate_artificial({.as_count = 200, .seed = 1});
  const auto categories = topo::classify_ases(topology);
  std::vector<AnchorEvent> events;
  for (bgp::AsNumber as = 0; as + 1 < 40; as += 2) {
    events.push_back(
        AnchorEvent{AnchorEvent::Type::kNewLink, 0, 5, as, as + 1});
  }
  const auto matrix = selection_matrix(events, categories);
  double diagonal = 0.0, total = 0.0;
  for (std::size_t a = 0; a < topo::kCategoryCount; ++a) {
    diagonal += matrix[a][a];
    for (std::size_t b = 0; b < topo::kCategoryCount; ++b) {
      total += matrix[a][b];
      EXPECT_DOUBLE_EQ(matrix[a][b], matrix[b][a]);
    }
  }
  // Off-diagonal mass is double-counted in the symmetric rendering, so
  // total = 1 + (1 - diagonal).
  EXPECT_NEAR(total, 2.0 - diagonal, 1e-9);
}

TEST(Scoring, NormalizeColumnsZeroMeanUnitVariance) {
  EventFeatureMatrix matrix;
  matrix.rows.resize(4);
  for (std::size_t r = 0; r < 4; ++r) {
    matrix.rows[r].fill(0.0);
    matrix.rows[r][0] = static_cast<double>(r);  // varying column
    matrix.rows[r][1] = 7.0;                     // constant column
  }
  normalize_columns(matrix);
  double mean = 0.0;
  for (const auto& row : matrix.rows) mean += row[0];
  EXPECT_NEAR(mean, 0.0, 1e-12);
  for (const auto& row : matrix.rows) EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(Scoring, IdenticalVpsScoreMostRedundant) {
  // Three VPs: 0 and 1 see identical deltas, 2 sees something different.
  std::vector<EventFeatureMatrix> matrices(5);
  for (auto& matrix : matrices) {
    matrix.rows.resize(3);
    matrix.rows[0].fill(1.0);
    matrix.rows[1].fill(1.0);
    matrix.rows[2].fill(-2.0);
  }
  const auto scores = redundancy_scores(std::move(matrices));
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_NEAR(scores[0][1], 1.0, 1e-9);  // identical pair => max score
  EXPECT_LT(scores[0][2], scores[0][1]);
  EXPECT_DOUBLE_EQ(scores[0][2], scores[2][0]);  // symmetric
}

TEST(Component2, InitializesWithMostRedundantVp) {
  // VP 1 is highly redundant with everyone; VP 2 unique.
  std::vector<std::vector<double>> scores{
      {1.0, 0.9, 0.2},
      {0.9, 1.0, 0.3},
      {0.2, 0.3, 1.0},
  };
  const std::vector<bgp::VpId> vps{10, 11, 12};
  const std::vector<double> volumes{5.0, 5.0, 5.0};
  Component2Config config;
  config.stop_threshold = 2.0;  // never stop early: select everyone
  const auto result = select_anchors(scores, vps, volumes, config);
  ASSERT_FALSE(result.anchors.empty());
  EXPECT_EQ(result.anchors[0], 11u);  // highest total redundancy
  EXPECT_EQ(result.anchors.size(), 3u);
}

TEST(Component2, StopsWhenRemainingVpsAreCovered) {
  // VP 2 is fully redundant with VP 0: once 0 (or 1) is selected plus the
  // low-redundancy one, 2 should not be needed.
  std::vector<std::vector<double>> scores{
      {1.0, 0.1, 1.0},
      {0.1, 1.0, 0.1},
      {1.0, 0.1, 1.0},
  };
  const std::vector<bgp::VpId> vps{0, 1, 2};
  const std::vector<double> volumes{1.0, 1.0, 1.0};
  Component2Config config;
  config.stop_threshold = 0.99;
  const auto result = select_anchors(scores, vps, volumes, config);
  EXPECT_EQ(result.anchors.size(), 2u);
  EXPECT_FALSE(std::find(result.anchors.begin(), result.anchors.end(), 2u) !=
                   result.anchors.end() &&
               std::find(result.anchors.begin(), result.anchors.end(), 0u) !=
                   result.anchors.end());
}

TEST(Component2, VolumeBreaksTiesWithinPool) {
  // Three equally nonredundant candidates; γ=1.0 admits all of them to the
  // pool, so the lowest-volume VP must be picked after the initial one.
  std::vector<std::vector<double>> scores{
      {1.0, 0.5, 0.5, 0.5},
      {0.5, 1.0, 0.0, 0.0},
      {0.5, 0.0, 1.0, 0.0},
      {0.5, 0.0, 0.0, 1.0},
  };
  const std::vector<bgp::VpId> vps{0, 1, 2, 3};
  const std::vector<double> volumes{10.0, 9.0, 1.0, 5.0};
  Component2Config config;
  config.gamma = 1.0;
  config.stop_threshold = 2.0;
  config.max_anchors = 2;
  const auto result = select_anchors(scores, vps, volumes, config);
  ASSERT_EQ(result.anchors.size(), 2u);
  EXPECT_EQ(result.anchors[0], 0u);  // most redundant overall
  EXPECT_EQ(result.anchors[1], 2u);  // lowest volume in the pool
}

TEST(Component2, EmptyMatrix) {
  const auto result = select_anchors({}, {}, {}, {});
  EXPECT_TRUE(result.anchors.empty());
}

TEST(EventInference, FindsInjectedEvents) {
  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 3});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 300; as += 6) config.vp_hosts.push_back(as);
  config.rng_seed = 4;
  sim::Internet internet(topology, config);
  const auto rib = internet.rib_dump(0);

  sim::WorkloadConfig workload;
  workload.seed = 5;
  const auto stream = sim::generate_workload(internet, 10, workload);

  const auto inferred = infer_events(rib, stream, {});
  EXPECT_GT(inferred.size(), 5u);
  std::set<AnchorEvent::Type> types;
  for (const auto& event : inferred) {
    EXPECT_GE(event.observer_count, 1u);
    types.insert(event.event.type);
  }
  EXPECT_EQ(types.size(), 3u);  // all three event types appear

  const auto filtered =
      filter_non_global(inferred, config.vp_hosts.size(), 0.5);
  EXPECT_LE(filtered.size(), inferred.size());
}

TEST(EventInference, OriginChangeDetected) {
  bgp::UpdateStream rib;
  bgp::Update entry;
  entry.vp = 0;
  entry.time = 0;
  entry.prefix = net::Prefix::parse("10.0.0.0/24").value();
  entry.path = bgp::AsPath{1, 2, 3};
  rib.push(entry);

  bgp::UpdateStream stream;
  bgp::Update change = entry;
  change.time = 100;
  change.path = bgp::AsPath{1, 2, 9};  // origin 3 -> 9
  stream.push(change);

  const auto inferred = infer_events(rib, stream, {});
  bool found = false;
  for (const auto& event : inferred) {
    if (event.event.type == AnchorEvent::Type::kOriginChange) {
      EXPECT_EQ(event.event.as1, 3u);
      EXPECT_EQ(event.event.as2, 9u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FeatureExtraction, EndToEndProducesPerVpRows) {
  const auto topology = topo::generate_artificial({.as_count = 200, .seed = 8});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 200; as += 10) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);
  const auto rib = internet.rib_dump(0);

  sim::WorkloadConfig workload;
  workload.seed = 9;
  workload.duration = 1200;
  const auto stream = sim::generate_workload(internet, 10, workload);

  const auto categories = topo::classify_ases(topology);
  EventSelectionConfig selection;
  selection.per_type_quota = 15;
  const auto candidates = candidate_events(internet.ground_truth(),
                                           config.vp_hosts.size(), selection);
  const auto events = select_events(candidates, categories, selection);
  ASSERT_FALSE(events.empty());

  std::vector<bgp::VpId> vps;
  for (bgp::VpId vp = 0; vp < config.vp_hosts.size(); ++vp) vps.push_back(vp);
  EventFeatureExtractor extractor(vps);
  auto matrices = extractor.extract(rib, stream, events);
  ASSERT_EQ(matrices.size(), events.size());
  for (const auto& matrix : matrices) {
    EXPECT_EQ(matrix.rows.size(), vps.size());
  }

  const auto scores = redundancy_scores(std::move(matrices));
  ASSERT_EQ(scores.size(), vps.size());
  // Diagonal is 1; scores within [0, 1]; symmetric.
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i][i], 1.0);
    for (std::size_t j = 0; j < scores.size(); ++j) {
      EXPECT_GE(scores[i][j], 0.0);
      EXPECT_LE(scores[i][j], 1.0);
      EXPECT_DOUBLE_EQ(scores[i][j], scores[j][i]);
    }
  }
}

}  // namespace
}  // namespace gill::anchor
