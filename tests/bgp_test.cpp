#include <gtest/gtest.h>

#include "bgp/as_path.hpp"
#include "bgp/delta.hpp"
#include "bgp/rib.hpp"
#include "bgp/update.hpp"

namespace gill::bgp {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

Update make(VpId vp, Timestamp t, const char* prefix,
            std::initializer_list<AsNumber> path,
            CommunitySet communities = {}) {
  Update u;
  u.vp = vp;
  u.time = t;
  u.prefix = pfx(prefix);
  u.path = AsPath(path);
  u.communities = std::move(communities);
  return u;
}

TEST(AsPath, BasicAccessors) {
  const AsPath path{6, 2, 1, 4};
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(path.first(), 6u);
  EXPECT_EQ(path.origin(), 4u);
  EXPECT_TRUE(path.contains(2));
  EXPECT_FALSE(path.contains(9));
  EXPECT_EQ(path.str(), "6 2 1 4");
}

TEST(AsPath, LinksSkipPrependRepetitions) {
  AsPath path{6, 2, 1, 4};
  path.prepend(6, 2);  // 6 6 6 2 1 4
  EXPECT_EQ(path.size(), 6u);
  EXPECT_EQ(path.unique_length(), 4u);
  const auto links = path.links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0], (AsLink{6, 2}));
  EXPECT_EQ(links[1], (AsLink{2, 1}));
  EXPECT_EQ(links[2], (AsLink{1, 4}));
}

TEST(AsPath, EmptyPath) {
  const AsPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.origin(), 0u);
  EXPECT_TRUE(path.links().empty());
  EXPECT_EQ(path.unique_length(), 0u);
}

TEST(Communities, InsertKeepsSortedUnique) {
  CommunitySet set;
  insert_community(set, Community(20, 5));
  insert_community(set, Community(10, 7));
  insert_community(set, Community(20, 5));
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], Community(10, 7));
  EXPECT_EQ(set[1], Community(20, 5));
  EXPECT_EQ(set[1].str(), "20:5");
  EXPECT_EQ(Community::from_packed(set[1].packed()), set[1]);
}

TEST(Communities, SubsetSemantics) {
  CommunitySet a{{10, 1}, {20, 2}};
  CommunitySet b{{10, 1}, {20, 2}, {30, 3}};
  EXPECT_TRUE(is_subset(a, b));
  EXPECT_FALSE(is_subset(b, a));
  EXPECT_TRUE(is_subset({}, a));
}

TEST(Update, IdenticalUsesTimestampSlack) {
  const Update a = make(1, 1000, "10.0.0.0/24", {2, 1, 4});
  Update b = a;
  b.time = 1099;
  EXPECT_TRUE(identical_updates(a, b));
  b.time = 1100;
  EXPECT_FALSE(identical_updates(a, b));
  b.time = 1000;
  b.vp = 2;
  EXPECT_FALSE(identical_updates(a, b));
}

TEST(UpdateStream, SortAndWindow) {
  UpdateStream stream;
  stream.push(make(1, 300, "10.0.1.0/24", {1, 2}));
  stream.push(make(2, 100, "10.0.0.0/24", {1, 2}));
  stream.push(make(1, 200, "10.0.0.0/24", {1, 3}));
  stream.sort();
  EXPECT_EQ(stream.updates()[0].time, 100);
  EXPECT_EQ(stream.updates()[2].time, 300);

  const auto windowed = stream.window(100, 300);
  EXPECT_EQ(windowed.size(), 2u);
  EXPECT_EQ(stream.by_vp(1).size(), 2u);
  EXPECT_EQ(stream.vps(), (std::vector<VpId>{1, 2}));
  EXPECT_EQ(stream.prefixes().size(), 2u);
}

TEST(DeltaTracker, FirstUpdateHasNoWithdrawnSets) {
  DeltaTracker tracker;
  const auto a = tracker.annotate(make(1, 0, "10.0.0.0/24", {2, 1, 4}));
  EXPECT_EQ(a.links.size(), 2u);
  EXPECT_TRUE(a.withdrawn_links.empty());
  EXPECT_TRUE(a.withdrawn_communities.empty());
}

TEST(DeltaTracker, ImplicitWithdrawalComputesLw) {
  DeltaTracker tracker;
  tracker.annotate(make(1, 0, "10.0.0.0/24", {2, 4}));
  const auto second = tracker.annotate(make(1, 50, "10.0.0.0/24", {2, 1, 4}));
  // Old path 2-4 is replaced by 2-1, 1-4: link (2,4) is withdrawn.
  ASSERT_EQ(second.withdrawn_links.size(), 1u);
  EXPECT_EQ(second.withdrawn_links[0], (AsLink{2, 4}));
  const auto effective = second.effective_links();
  ASSERT_EQ(effective.size(), 2u);
}

TEST(DeltaTracker, TracksPerVpPerPrefixIndependently) {
  DeltaTracker tracker;
  tracker.annotate(make(1, 0, "10.0.0.0/24", {2, 4}));
  // Same prefix from a different VP: no previous state for (vp=2, p).
  const auto other = tracker.annotate(make(2, 10, "10.0.0.0/24", {6, 2, 4}));
  EXPECT_TRUE(other.withdrawn_links.empty());
  // Different prefix from vp=1: also fresh.
  const auto fresh = tracker.annotate(make(1, 20, "10.0.1.0/24", {2, 1, 4}));
  EXPECT_TRUE(fresh.withdrawn_links.empty());
}

TEST(DeltaTracker, CommunityWithdrawals) {
  DeltaTracker tracker;
  tracker.annotate(
      make(1, 0, "10.0.0.0/24", {2, 4}, CommunitySet{{10, 1}, {20, 2}}));
  const auto second = tracker.annotate(
      make(1, 50, "10.0.0.0/24", {2, 4}, CommunitySet{{20, 2}, {30, 3}}));
  ASSERT_EQ(second.withdrawn_communities.size(), 1u);
  EXPECT_EQ(second.withdrawn_communities[0], Community(10, 1));
  // C and Cw are disjoint by construction (§4.2), so C \ Cw == C.
  const auto effective = second.effective_communities();
  ASSERT_EQ(effective.size(), 2u);
  EXPECT_EQ(effective[0], Community(20, 2));
  EXPECT_EQ(effective[1], Community(30, 3));
}

TEST(DeltaTracker, ExplicitWithdrawalClearsState) {
  DeltaTracker tracker;
  tracker.annotate(make(1, 0, "10.0.0.0/24", {2, 4}));
  Update withdraw;
  withdraw.vp = 1;
  withdraw.time = 10;
  withdraw.prefix = pfx("10.0.0.0/24");
  withdraw.withdrawal = true;
  const auto w = tracker.annotate(withdraw);
  EXPECT_EQ(w.withdrawn_links.size(), 1u);
  // Re-announcement after the withdrawal is "fresh" again.
  const auto re = tracker.annotate(make(1, 20, "10.0.0.0/24", {2, 4}));
  EXPECT_TRUE(re.withdrawn_links.empty());
}

TEST(Rib, ApplyAndDump) {
  Rib rib;
  rib.apply(make(1, 0, "10.0.0.0/24", {2, 4}));
  rib.apply(make(1, 10, "10.0.1.0/24", {2, 1, 4}));
  rib.apply(make(1, 20, "10.0.0.0/24", {2, 1, 4}));  // implicit replace
  EXPECT_EQ(rib.size(), 2u);
  const Route* route = rib.find(pfx("10.0.0.0/24"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->path.str(), "2 1 4");

  Update withdraw;
  withdraw.vp = 1;
  withdraw.time = 30;
  withdraw.prefix = pfx("10.0.1.0/24");
  withdraw.withdrawal = true;
  rib.apply(withdraw);
  EXPECT_EQ(rib.size(), 1u);

  const auto dump = rib.dump(1, 100);
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump.updates()[0].time, 100);
  EXPECT_FALSE(dump.updates()[0].withdrawal);
}

TEST(RibSet, RoutesPerVp) {
  RibSet ribs;
  UpdateStream stream;
  stream.push(make(1, 0, "10.0.0.0/24", {2, 4}));
  stream.push(make(2, 0, "10.0.0.0/24", {6, 2, 4}));
  stream.sort();
  ribs.apply(stream);
  ASSERT_NE(ribs.find(1), nullptr);
  ASSERT_NE(ribs.find(2), nullptr);
  EXPECT_EQ(ribs.find(1)->find(pfx("10.0.0.0/24"))->path.str(), "2 4");
  EXPECT_EQ(ribs.find(2)->find(pfx("10.0.0.0/24"))->path.str(), "6 2 4");
  EXPECT_EQ(ribs.find(3), nullptr);
}

}  // namespace
}  // namespace gill::bgp
