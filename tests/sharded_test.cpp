// Sharded ingest plane (DESIGN.md §14): the determinism contract and the
// teardown races.
//
// The contract under test: the merged mirror and the merged RIB snapshot
// handed to the analysis pipeline are byte-identical regardless of how
// many ingest shards the sessions landed on. The test pins the two free
// variables the contract depends on — VP ids (sessions connect one at a
// time, so the global allocator hands out 0..N-1 in connect order) and
// timestamps (a fixed injected clock) — and then compares MRT encodings
// across 1-, 2- and 4-shard fleets fed the same traffic.
//
// The race tests drive abrupt peer disconnects while the control thread
// harvests mirrors and runs merge refreshes on the analysis pool; under a
// GILL_SANITIZE=thread build (`ctest -L parallel`) TSan turns them into
// data-race detectors. The flap-storm soak is env-scaled by
// GILL_SOAK_PEERS / GILL_SOAK_ROUNDS and joins tools/soak.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "collector/sharded.hpp"
#include "daemon/daemon.hpp"
#include "mrt/mrt.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace gill::collect {
namespace {

constexpr bgp::Timestamp kNow = 7777;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::vector<std::uint8_t> stream_bytes(const bgp::UpdateStream& stream) {
  mrt::Writer writer;
  for (const auto& update : stream) writer.write_update(update);
  return writer.buffer();
}

/// A fleet of loopback FakePeer clients against one ShardedPlatform, all
/// client ends driven from the test thread (the platform's shards run on
/// their own threads).
struct ClientFleet {
  net::EventLoop loop;
  metrics::Registry registry;
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::vector<std::unique_ptr<daemon::FakePeer>> peers;

  void pump() {
    loop.run_once(1);
    for (auto& peer : peers) {
      if (peer) peer->poll();
    }
    for (auto& transport : transports) {
      if (transport) transport->sync();
    }
  }

  /// Connects one more peer and waits until BOTH ends consider the
  /// session up. Serial connects make VP ids independent of shard count:
  /// the global allocator assigns them in connect order.
  bool connect(ShardedPlatform& platform, bgp::AsNumber as) {
    // peer_count() is monotonic (dead sessions stay registered), so wait
    // for it to grow by one rather than match the live-client count.
    const std::size_t want = platform.peer_count() + 1;
    auto transport = std::make_unique<net::TcpTransport>(
        loop, net::Role::kPeerSide, &registry);
    if (!transport->dial("127.0.0.1", platform.port())) return false;
    peers.push_back(std::make_unique<daemon::FakePeer>(as, *transport));
    transports.push_back(std::move(transport));
    for (int i = 0; i < 50000; ++i) {
      if (peers.back()->established() && platform.peer_count() >= want) {
        return true;
      }
      pump();
    }
    return false;
  }

  /// FIN from the client side: the far shard sees an abrupt disconnect.
  void drop(std::size_t index) {
    peers[index].reset();
    transports[index].reset();
  }
};

/// Runs the canonical traffic pattern against a `shard_count` fleet and
/// returns the (merged mirror, merged RIB dump) MRT encodings.
struct MergedBytes {
  std::vector<std::uint8_t> mirror;
  std::vector<std::uint8_t> rib;
  std::size_t shards_used = 0;
};

MergedBytes run_canonical_traffic(std::size_t shard_count,
                                  std::size_t peer_count,
                                  std::size_t bursts_per_peer) {
  constexpr std::size_t kBurst = 10;
  MergedBytes out;

  metrics::Registry registry;
  ShardedPlatformConfig config;
  config.shards = shard_count;
  config.platform.local_as = 65000;
  config.platform.registry = &registry;
  config.platform.component1_refresh = 0;
  config.rib_dump_interval = 8 * 3600;  // enables RIB tracking; > kNow, so
                                        // no periodic snapshot ever fires
  config.clock = [] { return kNow; };
  ShardedPlatform platform(config);
  EXPECT_TRUE(platform.listen("127.0.0.1", 0));
  platform.start(/*tick_ms=*/1);
  out.shards_used = platform.shard_count();

  ClientFleet fleet;
  for (std::size_t i = 0; i < peer_count; ++i) {
    EXPECT_TRUE(
        fleet.connect(platform, static_cast<bgp::AsNumber>(65001 + i)))
        << "peer " << i << " never established (" << shard_count
        << " shards)";
  }

  for (std::size_t round = 0; round < bursts_per_peer; ++round) {
    for (std::size_t i = 0; i < peer_count; ++i) {
      fleet.peers[i]->send_synthetic_burst(
          kBurst, (10u << 24) | (static_cast<std::uint32_t>(i) << 16) |
                      (static_cast<std::uint32_t>(round) << 8));
    }
  }
  const std::size_t expected = peer_count * bursts_per_peer * kBurst;
  for (int i = 0; i < 200000 && platform.stored_updates() < expected; ++i) {
    fleet.pump();
  }
  EXPECT_EQ(platform.stored_updates(), expected);

  out.rib = stream_bytes(platform.merged_rib_dump(kNow));
  out.mirror = stream_bytes(platform.take_merged_mirror());
  platform.stop();
  return out;
}

TEST(Sharded, MergedSnapshotsByteIdenticalAcrossShardCounts) {
  const std::size_t peer_count = 12;
  const std::size_t bursts = 4;

  const MergedBytes one = run_canonical_traffic(1, peer_count, bursts);
  const MergedBytes two = run_canonical_traffic(2, peer_count, bursts);
  const MergedBytes four = run_canonical_traffic(4, peer_count, bursts);
  ASSERT_EQ(one.shards_used, 1u);
  ASSERT_EQ(two.shards_used, 2u);
  ASSERT_EQ(four.shards_used, 4u);

  ASSERT_FALSE(one.mirror.empty());
  EXPECT_EQ(one.mirror, two.mirror)
      << "merged mirror depends on the shard count (1 vs 2)";
  EXPECT_EQ(one.mirror, four.mirror)
      << "merged mirror depends on the shard count (1 vs 4)";
  ASSERT_FALSE(one.rib.empty());
  EXPECT_EQ(one.rib, two.rib)
      << "merged RIB dump depends on the shard count (1 vs 2)";
  EXPECT_EQ(one.rib, four.rib)
      << "merged RIB dump depends on the shard count (1 vs 4)";
}

TEST(Sharded, DisconnectDuringMergeIsSafe) {
  const std::size_t peer_count = 8;

  metrics::Registry registry;
  ShardedPlatformConfig config;
  config.shards = 4;
  config.platform.local_as = 65000;
  config.platform.registry = &registry;
  config.platform.component1_refresh = 0;
  config.analysis_threads = 2;  // merge jobs race the ingest threads
  config.clock = [] { return kNow; };
  ShardedPlatform platform(config);
  ASSERT_TRUE(platform.listen("127.0.0.1", 0));
  platform.start(/*tick_ms=*/1);

  ClientFleet fleet;
  for (std::size_t i = 0; i < peer_count; ++i) {
    ASSERT_TRUE(
        fleet.connect(platform, static_cast<bgp::AsNumber>(65001 + i)));
  }
  for (std::size_t i = 0; i < peer_count; ++i) {
    fleet.peers[i]->send_synthetic_burst(
        50, (10u << 24) | (static_cast<std::uint32_t>(i) << 16));
  }
  for (int i = 0; i < 100000 && platform.stored_updates() < peer_count * 50;
       ++i) {
    fleet.pump();
  }

  // Kick off an async merge over the harvested mirrors, then yank half the
  // sessions mid-flight while the control plane keeps harvesting.
  platform.refresh_filters(kNow);
  for (std::size_t i = 0; i < peer_count; i += 2) {
    fleet.drop(i);
    platform.control_tick(kNow);
    (void)platform.health_snapshot();
    (void)platform.take_merged_mirror();
    fleet.pump();
  }
  platform.wait_for_refresh();
  EXPECT_GE(platform.filter_generation(), 1u);

  // The surviving sessions are still serviced after the churn.
  const std::size_t before = platform.stored_updates();
  for (std::size_t i = 1; i < peer_count; i += 2) {
    fleet.peers[i]->send_synthetic_burst(
        10, (172u << 24) | (static_cast<std::uint32_t>(i) << 16));
  }
  for (int i = 0;
       i < 100000 &&
       platform.stored_updates() < before + (peer_count / 2) * 10;
       ++i) {
    fleet.pump();
  }
  EXPECT_EQ(platform.stored_updates(), before + (peer_count / 2) * 10);
  platform.stop();
}

TEST(Sharded, FlapStormAcrossShardsSoak) {
  const std::size_t peer_count = env_size("GILL_SOAK_PEERS", 16);
  const std::size_t rounds = env_size("GILL_SOAK_ROUNDS", 2);

  metrics::Registry registry;
  ShardedPlatformConfig config;
  config.shards = 4;
  config.platform.local_as = 65000;
  config.platform.registry = &registry;
  config.platform.component1_refresh = 0;
  config.analysis_threads = 2;
  config.clock = [] { return kNow; };
  ShardedPlatform platform(config);
  ASSERT_TRUE(platform.listen("127.0.0.1", 0));
  platform.start(/*tick_ms=*/1);

  ClientFleet fleet;
  for (std::size_t i = 0; i < peer_count; ++i) {
    ASSERT_TRUE(
        fleet.connect(platform, static_cast<bgp::AsNumber>(65001 + i)));
  }

  // Once a refresh installs filters, redundant VPs' updates are filtered
  // instead of stored — so the conservation invariant is stored + filtered
  // == sent, not stored == sent.
  const auto accounted = [&] {
    return platform.stored_updates() +
           static_cast<std::size_t>(
               registry.counter_total("gill_daemon_updates_filtered_total"));
  };
  std::size_t sent = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < fleet.peers.size(); ++i) {
      if (!fleet.peers[i]) continue;
      fleet.peers[i]->send_synthetic_burst(
          20, (10u << 24) | (static_cast<std::uint32_t>(i & 0xff) << 16) |
                  (static_cast<std::uint32_t>(round & 0xff) << 8));
      sent += 20;
    }
    for (int i = 0; i < 50000 && accounted() < sent; ++i) {
      fleet.pump();
    }
    ASSERT_EQ(accounted(), sent) << "round " << round;

    // The storm: every other session FINs and a replacement dials in
    // while a merge refresh is in flight.
    platform.refresh_filters(kNow);
    for (std::size_t i = round % 2; i < fleet.peers.size(); i += 2) {
      if (fleet.peers[i]) fleet.drop(i);
    }
    const std::size_t survivors = platform.peer_count();
    for (std::size_t i = 0; i < peer_count / 2; ++i) {
      ASSERT_TRUE(fleet.connect(
          platform, static_cast<bgp::AsNumber>(65101 + round * 100 + i)));
      platform.control_tick(kNow);
    }
    EXPECT_GE(platform.peer_count(), survivors + peer_count / 2);
    platform.wait_for_refresh();
  }
  EXPECT_GE(platform.filter_generation(), 1u);
  platform.stop();
}

}  // namespace
}  // namespace gill::collect
