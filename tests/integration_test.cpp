// Cross-module integration tests: the full GILL loop — simulate, collect,
// analyze, filter, re-collect — plus platform + archive round trips and
// end-to-end determinism.
#include <gtest/gtest.h>

#include <cstdio>

#include "collector/platform.hpp"
#include "collector/vetting.hpp"
#include "mrt/mrt.hpp"
#include "netbase/prefix_alloc.hpp"
#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/detectors.hpp"

namespace gill {
namespace {

struct World {
  topo::AsTopology topology;
  sim::InternetConfig config;
  std::unique_ptr<sim::Internet> internet;
  bgp::UpdateStream ribs;
  bgp::UpdateStream training;
  bgp::UpdateStream eval;

  explicit World(std::uint64_t seed) {
    topology = topo::generate_artificial({.as_count = 250, .seed = seed});
    for (bgp::AsNumber as = 0; as < 250; as += 5) {
      config.vp_hosts.push_back(as);
    }
    std::mt19937_64 prefix_rng(seed + 1);
    config.prefixes = net::PrefixAllocator::assign(250, prefix_rng, 4);
    config.rng_seed = seed + 2;
    internet = std::make_unique<sim::Internet>(topology, config);
    ribs = internet->rib_dump(0);

    sim::WorkloadConfig training_workload;
    training_workload.seed = seed + 3;
    training_workload.duration = 2 * 3600;
    training_workload.hotspot_fraction = 0.3;
    training = sim::generate_workload(*internet, 10, training_workload);
    internet->ground_truth().clear();

    sim::WorkloadConfig eval_workload;
    eval_workload.seed = seed + 4;
    eval_workload.hotspot_fraction = 0.3;
    eval = sim::generate_workload(*internet, 3 * 3600, eval_workload);
  }
};

TEST(Integration, FullPipelineInvariants) {
  World world(1000);
  const auto categories = topo::classify_ases(world.topology);
  const auto result = sample::run_gill_pipeline(world.ribs, world.training,
                                                categories, {});

  // Every (vp, prefix) pair of the training data is classified exactly once.
  for (const auto& pair : result.component1.nonredundant) {
    EXPECT_FALSE(result.component1.redundant.contains(pair));
  }
  // Filters never drop a pair classified nonredundant.
  for (const auto& pair : result.component1.nonredundant) {
    bgp::Update probe;
    probe.vp = pair.vp;
    probe.prefix = pair.prefix;
    EXPECT_TRUE(result.filters.accept(probe));
  }
  // Anchors are a subset of the training VPs.
  const auto vps = world.training.vps();
  for (const bgp::VpId anchor : result.anchors) {
    EXPECT_TRUE(std::binary_search(vps.begin(), vps.end(), anchor));
  }
  // Applying the filters to the training stream retains at least the
  // nonredundant fraction (anchors add more on top).
  const auto stats = filt::apply_filters(result.filters, world.training);
  EXPECT_GE(1.0 - stats.matched_fraction(),
            result.component1.retained_fraction() - 1e-9);
}

TEST(Integration, PipelineIsDeterministic) {
  World a(2000);
  World b(2000);
  const auto categories = topo::classify_ases(a.topology);
  const auto ra = sample::run_gill_pipeline(a.ribs, a.training, categories, {});
  const auto rb = sample::run_gill_pipeline(b.ribs, b.training, categories, {});
  EXPECT_EQ(ra.anchors, rb.anchors);
  EXPECT_EQ(ra.filters.drop_rule_count(), rb.filters.drop_rule_count());
  EXPECT_EQ(ra.component1.redundant.size(), rb.component1.redundant.size());
  // The filters take identical decisions on the evaluation stream.
  for (const auto& update : a.eval) {
    EXPECT_EQ(ra.filters.accept(update), rb.filters.accept(update));
  }
}

TEST(Integration, SampledDataRoundTripsThroughMrt) {
  World world(3000);
  sample::SamplingContext ctx;
  ctx.all_updates = &world.eval;
  ctx.all_ribs = &world.ribs;
  ctx.training = &world.training;
  ctx.training_ribs = &world.ribs;
  ctx.topology = &world.topology;
  ctx.vp_hosts = &world.config.vp_hosts;
  ctx.seed = 5;

  sample::GillSampler gill;
  const auto sample = gill.sample(ctx, 0);
  ASSERT_GT(sample.updates.size(), 0u);

  const std::string path = "/tmp/gill_integration_archive.mrt";
  ASSERT_TRUE(mrt::write_stream(sample.updates, path));
  const auto loaded = mrt::read_stream(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), sample.updates.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ(loaded->updates()[i], sample.updates.updates()[i]);
  }

  // Analyses work identically on the reloaded archive.
  uc::DataSample original;
  original.updates = sample.updates;
  uc::DataSample reloaded;
  reloaded.updates = *loaded;
  EXPECT_EQ(uc::observed_links(original).size(),
            uc::observed_links(reloaded).size());
}

TEST(Integration, VettingToPlatformToArchive) {
  // The §9 onboarding path: vet two peers, exchange routes, refresh
  // filters, store, reload.
  collect::AsOwnershipRegistry registry;
  registry.register_owner("a.example", 65001);
  registry.register_owner("b.example", 65002);
  collect::PeeringVetting vetting(registry);
  const auto t1 = vetting.submit({65001, "noc@a.example", "192.0.2.1"});
  const auto t2 = vetting.submit({65002, "noc@b.example", "192.0.2.2"});
  ASSERT_EQ(vetting.confirm(t1, "noc@a.example"),
            collect::VettingOutcome::kAccepted);
  ASSERT_EQ(vetting.confirm(t2, "noc@b.example"),
            collect::VettingOutcome::kAccepted);

  collect::Platform platform;
  std::vector<bgp::VpId> vps;
  for (const auto& peer : vetting.accepted()) {
    vps.push_back(platform.add_peer(peer.as, 0));
  }
  platform.step(1);

  for (int round = 0; round < 4; ++round) {
    for (const bgp::VpId vp : vps) {
      bgp::Update update;
      update.prefix = net::Prefix::parse("203.0.113.0/24").value();
      update.path =
          round % 2 ? bgp::AsPath{65001, 64500} : bgp::AsPath{65001, 64501,
                                                              64500};
      platform.remote(vp).send_update(update);
    }
    platform.step(10 + round * 500);
  }
  EXPECT_EQ(platform.store().stored(), 8u);
  platform.refresh_filters(5000);
  EXPECT_GE(platform.filters().drop_rule_count() +
                platform.filters().anchors().size(),
            1u);

  const std::string path = "/tmp/gill_integration_platform.mrt";
  ASSERT_TRUE(platform.store().save(path));
  const auto loaded = mrt::read_stream(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 8u);
}

TEST(Integration, GillBudgetBeatsRandomUpdatesOnVisibility) {
  World world(4000);
  const auto truths = world.internet->ground_truth();
  const auto origins = uc::OriginTable::from_rib(world.ribs);

  sample::SamplingContext ctx;
  ctx.all_updates = &world.eval;
  ctx.all_ribs = &world.ribs;
  ctx.training = &world.training;
  ctx.training_ribs = &world.ribs;
  ctx.topology = &world.topology;
  ctx.vp_hosts = &world.config.vp_hosts;
  ctx.truths = &truths;
  ctx.origins = &origins;
  ctx.seed = 6;

  sample::GillSampler gill;
  const auto gill_sample = gill.sample(ctx, 0);
  const std::size_t budget = gill_sample.updates.size();
  ASSERT_GT(budget, 0u);
  ASSERT_LT(budget, world.eval.size());

  sample::RandomUpdateSampler random;
  const auto random_sample = random.sample(ctx, budget);

  // Same budget: GILL's link visibility should not be worse than randomly
  // dropped updates (usually strictly better).
  const auto gill_links = uc::observed_links(gill_sample).size();
  const auto random_links = uc::observed_links(random_sample).size();
  EXPECT_GE(gill_links + gill_links / 10, random_links);
}

}  // namespace
}  // namespace gill
