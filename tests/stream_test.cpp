// The live streaming distribution plane (GET /v1/stream): subscription
// parameter compilation, per-subscriber filtering over real loopback TCP,
// the trim/evict backpressure state machine under a stalled socket, the
// idle-sweep exemption for quiet parked streams, the legacy /stream alias
// and the raw-MRT output format.
//
// Like net_test, every test binds 127.0.0.1 port 0 and drives both ends of
// each connection from ONE event loop: single-threaded, deterministic,
// sanitizer-friendly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "feed/live_feed.hpp"
#include "mrt/mrt.hpp"
#include "net/event_loop.hpp"
#include "net/http_endpoint.hpp"
#include "net/stream.hpp"

namespace gill::net {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

bgp::Update make_update(bgp::VpId vp, const char* prefix,
                        std::vector<bgp::AsNumber> hops,
                        bgp::CommunitySet communities = {},
                        bool withdrawal = false) {
  bgp::Update update;
  update.vp = vp;
  update.time = 1000;
  update.prefix = pfx(prefix);
  update.path = bgp::AsPath(std::move(hops));
  update.communities = std::move(communities);
  update.withdrawal = withdrawal;
  return update;
}

HttpRequest make_request(
    std::initializer_list<std::pair<const char*, const char*>> params) {
  HttpRequest request;
  request.path = "/v1/stream";
  for (const auto& [key, value] : params) request.query[key] = value;
  return request;
}

/// Reassembles the payload of an HTTP chunked body received so far,
/// ignoring an incomplete trailing chunk.
std::string dechunk(std::string_view body) {
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t eol = body.find("\r\n", pos);
    if (eol == std::string_view::npos) break;
    const std::size_t size = std::strtoul(
        std::string(body.substr(pos, eol - pos)).c_str(), nullptr, 16);
    if (size == 0) break;  // terminating chunk
    if (body.size() < eol + 2 + size + 2) break;  // chunk still in flight
    out.append(body.substr(eol + 2, size));
    pos = eol + 2 + size + 2;
  }
  return out;
}

/// One streaming HTTP client over a raw non-blocking loopback socket:
/// sends its GET once, accumulates the chunked response, exposes the
/// de-chunked payload. `rcvbuf` shrinks the receive window before connect
/// so a non-reading client backs the server up after a few kilobytes.
struct LiveClient {
  int fd = -1;
  std::string raw;
  bool closed = false;

  LiveClient(std::uint16_t port, const std::string& target, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    EXPECT_GE(fd, 0);
    if (rcvbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    EXPECT_TRUE(rc == 0 || errno == EINPROGRESS);
    request_ = "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  ~LiveClient() {
    if (fd >= 0) ::close(fd);
  }

  /// Pushes the request out and (unless stalled) drains the socket.
  void pump(bool read = true) {
    if (sent_ < request_.size()) {
      const ssize_t n = ::send(fd, request_.data() + sent_,
                               request_.size() - sent_, MSG_NOSIGNAL);
      if (n > 0) sent_ += static_cast<std::size_t>(n);
    }
    if (!read) return;
    char buffer[8192];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        raw.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) closed = true;
      break;
    }
  }

  std::string headers() const {
    const std::size_t split = raw.find("\r\n\r\n");
    return split == std::string::npos ? std::string() : raw.substr(0, split);
  }
  std::string payload() const {
    const std::size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos) return {};
    return dechunk(std::string_view(raw).substr(split + 4));
  }
  /// The complete NDJSON lines received so far, decoded.
  std::vector<feed::LiveMessage> messages() const {
    std::vector<feed::LiveMessage> out;
    const std::string text = payload();
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t end = text.find('\n', start);
      if (end == std::string::npos) break;  // line still in flight
      const auto message =
          feed::decode_live(std::string_view(text).substr(start, end - start));
      EXPECT_TRUE(message.has_value()) << text.substr(start, end - start);
      if (message) out.push_back(*message);
      start = end + 1;
    }
    return out;
  }

 private:
  std::string request_;
  std::size_t sent_ = 0;
};

// ---------------------------------------------------------------------------
// Subscription compilation: every query parameter is validated strictly.
// ---------------------------------------------------------------------------

TEST(StreamSubscription, CompilesEveryParameter) {
  std::string error;
  const auto subscription = StreamSubscription::parse(
      make_request({{"vp", "7"},
                    {"prefix", "10.0.0.0/8"},
                    {"aspath", "^65010 "},
                    {"community", "65010:100"},
                    {"format", "mrt"}}),
      &error);
  ASSERT_TRUE(subscription.has_value()) << error;
  EXPECT_EQ(subscription->vp, 7u);
  EXPECT_EQ(subscription->prefix->str(), "10.0.0.0/8");
  EXPECT_EQ(subscription->aspath_text, "^65010 ");
  EXPECT_EQ(subscription->community, bgp::Community(65010, 100));
  EXPECT_EQ(subscription->format, StreamSubscription::Format::kMrt);

  const auto firehose = StreamSubscription::parse(make_request({}), &error);
  ASSERT_TRUE(firehose.has_value());
  EXPECT_FALSE(firehose->vp || firehose->prefix || firehose->aspath ||
               firehose->community);
  EXPECT_EQ(firehose->format, StreamSubscription::Format::kJson);
}

TEST(StreamSubscription, RejectsEveryMalformedParameter) {
  const std::initializer_list<std::pair<const char*, const char*>> bad = {
      {"vp", "abc"},          {"vp", "4294967296"},  {"vp", "-1"},
      {"prefix", "bananas"},  {"prefix", "10.0.0.0/33"},
      {"aspath", "(65010"},   // unbalanced group: not a valid regex
      {"community", "65010"}, {"community", "65010:x"},
      {"community", "70000:1"},
      {"format", "xml"},      {"nonsense", "1"}};
  for (const auto& [key, value] : bad) {
    std::string error;
    const auto subscription =
        StreamSubscription::parse(make_request({{key, value}}), &error);
    EXPECT_FALSE(subscription.has_value()) << key << "=" << value;
    EXPECT_FALSE(error.empty()) << key << "=" << value;
  }
  std::string error;
  EXPECT_FALSE(StreamSubscription::parse(make_request({{"bogus", "1"}}),
                                         &error));
  EXPECT_EQ(error, "unknown parameter 'bogus'");
}

TEST(StreamSubscription, MatchesIsAConjunctionOfAllClauses) {
  std::string error;
  const auto subscription = StreamSubscription::parse(
      make_request({{"vp", "2"},
                    {"prefix", "10.0.0.0/8"},
                    {"aspath", "65020"},
                    {"community", "65010:100"}}),
      &error);
  ASSERT_TRUE(subscription.has_value()) << error;

  const auto matching = make_update(2, "10.1.0.0/16", {65010, 65020, 64500},
                                    {bgp::Community(65010, 100)});
  EXPECT_TRUE(subscription->matches(matching));

  auto wrong_vp = matching;
  wrong_vp.vp = 3;
  EXPECT_FALSE(subscription->matches(wrong_vp));
  auto wrong_prefix = matching;
  wrong_prefix.prefix = pfx("11.0.0.0/8");
  EXPECT_FALSE(subscription->matches(wrong_prefix));
  auto wrong_path = matching;
  wrong_path.path = bgp::AsPath({65010, 64500});
  EXPECT_FALSE(subscription->matches(wrong_path));
  auto wrong_community = matching;
  wrong_community.communities = {bgp::Community(65010, 200)};
  EXPECT_FALSE(subscription->matches(wrong_community));
}

TEST(StreamSubscription, PrefixClauseMeansEqualOrMoreSpecific) {
  std::string error;
  const auto subscription = StreamSubscription::parse(
      make_request({{"prefix", "10.0.0.0/8"}}), &error);
  ASSERT_TRUE(subscription.has_value());
  EXPECT_TRUE(subscription->matches(make_update(1, "10.0.0.0/8", {65010})));
  EXPECT_TRUE(subscription->matches(make_update(1, "10.2.3.0/24", {65010})));
  // A covering (less specific) route is NOT within 10.0.0.0/8.
  EXPECT_FALSE(subscription->matches(make_update(1, "0.0.0.0/0", {65010})));
}

// ---------------------------------------------------------------------------
// Fan-out over real loopback TCP.
// ---------------------------------------------------------------------------

TEST(StreamHub, TwoSubscribersReceiveExactlyTheirMatchesInArrivalOrder) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient by_prefix(http.port(), "/v1/stream?prefix=10.0.0.0/8");
  LiveClient by_vp(http.port(), "/v1/stream?vp=2");
  for (int i = 0; i < 500 && hub.subscriber_count() < 2; ++i) {
    loop.run_once(1);
    by_prefix.pump();
    by_vp.pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 2u);

  hub.publish(make_update(1, "10.1.0.0/16", {65010, 64500}));   // prefix only
  hub.publish(make_update(2, "192.168.0.0/16", {65020}));       // vp only
  hub.publish(make_update(2, "10.2.0.0/16", {65020, 64500}));   // both
  hub.publish(make_update(3, "172.16.0.0/12", {65030}));        // neither
  for (int i = 0; i < 500 && (by_prefix.messages().size() < 2 ||
                              by_vp.messages().size() < 2);
       ++i) {
    loop.run_once(1);
    by_prefix.pump();
    by_vp.pump();
  }

  EXPECT_NE(by_prefix.headers().find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(by_prefix.headers().find("Content-Type: application/x-ndjson"),
            std::string::npos)
      << by_prefix.headers();
  const auto prefix_messages = by_prefix.messages();
  ASSERT_EQ(prefix_messages.size(), 2u) << by_prefix.payload();
  EXPECT_EQ(prefix_messages[0].announcements.at(0).str(), "10.1.0.0/16");
  EXPECT_EQ(prefix_messages[1].announcements.at(0).str(), "10.2.0.0/16");

  const auto vp_messages = by_vp.messages();
  ASSERT_EQ(vp_messages.size(), 2u) << by_vp.payload();
  EXPECT_EQ(vp_messages[0].announcements.at(0).str(), "192.168.0.0/16");
  EXPECT_EQ(vp_messages[1].announcements.at(0).str(), "10.2.0.0/16");
  EXPECT_EQ(vp_messages[0].vp, 2u);

  EXPECT_EQ(registry.counter_total("gill_stream_fanout_msgs_total"), 4u);
  EXPECT_EQ(registry.counter_total("gill_stream_dropped_msgs_total"), 0u);
}

TEST(StreamHub, WithdrawalsStreamAsWithdrawalDocuments) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient client(http.port(), "/v1/stream");
  for (int i = 0; i < 500 && hub.subscriber_count() < 1; ++i) {
    loop.run_once(1);
    client.pump();
  }
  hub.publish(make_update(1, "10.1.0.0/16", {65010}, {}, /*withdrawal=*/true));
  for (int i = 0; i < 500 && client.messages().empty(); ++i) {
    loop.run_once(1);
    client.pump();
  }
  const auto messages = client.messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_TRUE(messages[0].announcements.empty());
  ASSERT_EQ(messages[0].withdrawals.size(), 1u);
  EXPECT_EQ(messages[0].withdrawals[0].str(), "10.1.0.0/16");
}

// A reader that stops consuming fills its kernel buffers, then its queue;
// above the high watermark its new messages are trimmed whole, and when it
// never drains it is evicted — all without disturbing a healthy subscriber
// or growing any queue past the watermark.
TEST(StreamHub, StalledReaderIsTrimmedThenEvictedWithoutCollateral) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamConfig config;
  config.queue_high_bytes = 4096;
  config.evict_after_drops = 8;
  StreamHub hub(http, config, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  // The healthy subscriber watches a prefix the flood never announces.
  LiveClient healthy(http.port(), "/v1/stream?prefix=192.168.0.0/16");
  // The stalled one takes the firehose through a tiny receive window and
  // will stop reading the moment its headers arrive.
  LiveClient stalled(http.port(), "/v1/stream", /*rcvbuf=*/1024);
  for (int i = 0;
       i < 500 && (hub.subscriber_count() < 2 || stalled.headers().empty());
       ++i) {
    loop.run_once(1);
    healthy.pump();
    stalled.pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 2u);

  // ~1.5 KiB per message (a long AS path): a handful fill the 4 KiB queue
  // once the kernel buffers are full.
  std::vector<bgp::AsNumber> long_path(200);
  for (std::size_t i = 0; i < long_path.size(); ++i) {
    long_path[i] = static_cast<bgp::AsNumber>(65000 + i);
  }
  int published = 0;
  for (; published < 20000 &&
         registry.counter_total("gill_stream_evictions_total") == 0;
       ++published) {
    hub.publish(make_update(1, "10.1.0.0/16", long_path));
    if (published % 16 == 0) {
      loop.run_once(0);
      healthy.pump();
    }
  }

  EXPECT_EQ(registry.counter_total("gill_stream_evictions_total"), 1u)
      << "stalled subscriber not evicted after " << published << " publishes";
  EXPECT_GE(registry.counter_total("gill_stream_dropped_msgs_total"),
            config.evict_after_drops);
  // Bounded memory: no queue ever exceeded the configured watermark.
  EXPECT_LE(hub.max_subscriber_queue_bytes(), config.queue_high_bytes);
  EXPECT_EQ(hub.subscriber_count(), 1u);

  // The healthy subscriber sailed through: its matching update arrives.
  hub.publish(make_update(1, "192.168.1.0/24", {65010}));
  for (int i = 0; i < 500 && healthy.messages().empty(); ++i) {
    loop.run_once(1);
    healthy.pump();
  }
  const auto messages = healthy.messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].announcements.at(0).str(), "192.168.1.0/24");
  EXPECT_EQ(hub.queue_bytes(), 0u);  // fully drained again
}

// Quiet is not stalled: a parked subscriber with nothing pending survives
// the idle sweep indefinitely and still receives the next update.
TEST(StreamHub, QuietParkedSubscriberSurvivesTheIdleSweep) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  http.set_idle_timeout_ms(80);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient client(http.port(), "/v1/stream");
  for (int i = 0; i < 500 && hub.subscriber_count() < 1; ++i) {
    loop.run_once(1);
    client.pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 1u);

  // Several idle timeouts elapse with an empty feed; the subscription must
  // hold (while net_test proves a *stalled* reader IS swept in this window).
  const auto start = loop.now_ms();
  while (loop.now_ms() < start + 400) {
    loop.run_once(5);
    client.pump();
  }
  EXPECT_EQ(hub.subscriber_count(), 1u);
  EXPECT_EQ(http.open_connections(), 1u);
  EXPECT_EQ(registry.counter_total("gill_net_http_idle_evictions_total"), 0u);

  hub.publish(make_update(4, "10.0.0.0/8", {65010}));
  for (int i = 0; i < 500 && client.messages().empty(); ++i) {
    loop.run_once(1);
    client.pump();
  }
  ASSERT_EQ(client.messages().size(), 1u);
  EXPECT_EQ(client.messages()[0].vp, 4u);
}

TEST(StreamHub, ClientDisconnectRetiresTheSubscription) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  auto client = std::make_unique<LiveClient>(http.port(), "/v1/stream");
  for (int i = 0; i < 500 && hub.subscriber_count() < 1; ++i) {
    loop.run_once(1);
    client->pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 1u);
  metrics::Gauge& subscribers =
      registry.gauge("gill_stream_subscribers", "Live /v1/stream subscribers");
  EXPECT_EQ(subscribers.value(), 1.0);

  client.reset();  // consumer walks away
  for (int i = 0; i < 500 && http.open_connections() > 0; ++i) {
    loop.run_once(1);
  }
  EXPECT_EQ(http.open_connections(), 0u);
  EXPECT_EQ(hub.subscriber_count(), 0u);
  EXPECT_EQ(subscribers.value(), 0.0);
}

// ---------------------------------------------------------------------------
// The versioned surface: retired legacy path, error envelopes, the 503
// limit.
// ---------------------------------------------------------------------------

// The pre-/v1 /stream spelling had a one-release grace window as an alias;
// it is retired now and must answer 404 with the uniform error envelope
// (never a silent empty feed), without consuming a subscriber slot.
TEST(StreamHub, RetiredLegacyStreamPathAnswers404) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient client(http.port(), "/stream?vp=9");
  for (int i = 0;
       i < 500 && client.raw.find("\r\n\r\n") == std::string::npos; ++i) {
    loop.run_once(1);
    client.pump();
  }
  EXPECT_NE(client.raw.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << client.raw;
  EXPECT_NE(client.raw.find("\"code\":\"not_found\""), std::string::npos)
      << client.raw;
  EXPECT_EQ(hub.subscriber_count(), 0u);
}

TEST(StreamHub, BadParameterGetsTheUniformErrorEnvelope) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient client(http.port(), "/v1/stream?prefix=bananas");
  for (int i = 0; i < 500 && !client.closed; ++i) {
    loop.run_once(1);
    client.pump();
  }
  EXPECT_NE(client.raw.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  EXPECT_NE(client.raw.find("{\"error\":{\"code\":\"bad_param\",\"message\":"
                            "\"bad prefix 'bananas': want CIDR like "
                            "10.0.0.0/8\"}}"),
            std::string::npos)
      << client.raw;
  EXPECT_EQ(hub.subscriber_count(), 0u);
  EXPECT_EQ(registry.counter_total("gill_stream_rejected_total"), 1u);
}

TEST(StreamHub, SubscriberLimitAnswers503) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamConfig config;
  config.max_subscribers = 1;
  StreamHub hub(http, config, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient first(http.port(), "/v1/stream");
  for (int i = 0; i < 500 && hub.subscriber_count() < 1; ++i) {
    loop.run_once(1);
    first.pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 1u);

  LiveClient second(http.port(), "/v1/stream");
  for (int i = 0; i < 500 && !second.closed; ++i) {
    loop.run_once(1);
    first.pump();
    second.pump();
  }
  EXPECT_NE(second.raw.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos)
      << second.raw;
  EXPECT_NE(second.raw.find("\"code\":\"subscribers_exhausted\""),
            std::string::npos);
  EXPECT_EQ(hub.subscriber_count(), 1u);
}

TEST(StreamHub, RegisterRoutesRejectsASecondHubOnTheSameEndpoint) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  // The paths are taken now: a second registration must be refused.
  EXPECT_FALSE(hub.register_routes());
}

// ---------------------------------------------------------------------------
// format=mrt: the same fan-out delivering raw framed MRT records.
// ---------------------------------------------------------------------------

TEST(StreamHub, MrtFormatDeliversDecodableFramedRecords) {
  EventLoop loop;
  metrics::Registry registry;
  HttpEndpoint http(loop, &registry);
  StreamHub hub(http, {}, &registry);
  ASSERT_TRUE(http.listen("127.0.0.1", 0));

  LiveClient client(http.port(), "/v1/stream?format=mrt&prefix=10.0.0.0/8");
  for (int i = 0; i < 500 && hub.subscriber_count() < 1; ++i) {
    loop.run_once(1);
    client.pump();
  }
  ASSERT_EQ(hub.subscriber_count(), 1u);

  hub.publish(make_update(1, "10.1.0.0/16", {65010, 64500}));
  hub.publish(make_update(2, "10.2.0.0/16", {65020}));
  hub.publish(make_update(2, "172.16.0.0/12", {65020}));  // filtered out

  mrt::Writer expected;
  expected.write_update(make_update(1, "10.1.0.0/16", {65010, 64500}));
  expected.write_update(make_update(2, "10.2.0.0/16", {65020}));
  for (int i = 0;
       i < 500 && client.payload().size() < expected.buffer().size(); ++i) {
    loop.run_once(1);
    client.pump();
  }
  EXPECT_NE(client.headers().find("Content-Type: application/octet-stream"),
            std::string::npos)
      << client.headers();

  const std::string payload = client.payload();
  mrt::Reader reader(std::span(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
  const auto first = reader.next();
  const auto second = reader.next();
  ASSERT_TRUE(first && second) << payload.size();
  EXPECT_EQ(first->update.prefix.str(), "10.1.0.0/16");
  EXPECT_EQ(first->update.path, bgp::AsPath({65010, 64500}));
  EXPECT_EQ(second->update.prefix.str(), "10.2.0.0/16");
  EXPECT_EQ(second->update.vp, 2u);
  EXPECT_TRUE(reader.done());
  EXPECT_TRUE(reader.ok());
}

}  // namespace
}  // namespace gill::net
