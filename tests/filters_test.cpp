#include <gtest/gtest.h>

#include "filters/filters.hpp"

namespace gill::filt {
namespace {

using bgp::AsPath;
using bgp::Update;

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

Update make(VpId vp, const char* prefix,
            std::initializer_list<bgp::AsNumber> path = {1, 2},
            bgp::CommunitySet communities = {}) {
  Update u;
  u.vp = vp;
  u.prefix = pfx(prefix);
  u.path = AsPath(path);
  u.communities = std::move(communities);
  return u;
}

TEST(FilterTable, PriorityOrderAnchorDropDefault) {
  FilterTable table;
  table.add_anchor(2);
  table.add_drop(1, pfx("10.0.0.0/24"));
  table.add_drop(2, pfx("10.0.0.0/24"));  // overridden by anchor status

  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24")));  // drop rule
  EXPECT_TRUE(table.accept(make(2, "10.0.0.0/24")));   // anchor wins
  EXPECT_TRUE(table.accept(make(1, "10.0.1.0/24")));   // default accept
  EXPECT_TRUE(table.accept(make(3, "10.0.0.0/24")));   // unknown VP accepted
}

TEST(FilterTable, CoarseGranularityIgnoresPathAndCommunities) {
  FilterTable table;
  table.add_drop(1, pfx("10.0.0.0/24"));
  // Same (vp, prefix) with any path / communities is dropped.
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24", {9, 8, 7})));
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24", {1, 2},
                                 bgp::CommunitySet{{5, 5}})));
}

TEST(FilterTable, AspGranularityMatchesExactPath) {
  FilterTable table(Granularity::kVpPrefixPath);
  table.add_drop(make(1, "10.0.0.0/24", {1, 2}));
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24", {1, 2})));
  // A different path no longer matches (the paper's point: -asp filters
  // stop matching future updates whose paths differ).
  EXPECT_TRUE(table.accept(make(1, "10.0.0.0/24", {1, 3})));
}

TEST(FilterTable, AspCommGranularityMatchesCommunitiesToo) {
  FilterTable table(Granularity::kVpPrefixPathComm);
  table.add_drop(make(1, "10.0.0.0/24", {1, 2}, bgp::CommunitySet{{5, 5}}));
  EXPECT_FALSE(table.accept(
      make(1, "10.0.0.0/24", {1, 2}, bgp::CommunitySet{{5, 5}})));
  EXPECT_TRUE(table.accept(
      make(1, "10.0.0.0/24", {1, 2}, bgp::CommunitySet{{5, 6}})));
  EXPECT_TRUE(table.accept(make(1, "10.0.0.0/24", {1, 2})));
}

TEST(FilterTable, GranularityNames) {
  EXPECT_EQ(to_string(Granularity::kVpPrefix), "GILL");
  EXPECT_EQ(to_string(Granularity::kVpPrefixPath), "GILL-asp");
  EXPECT_EQ(to_string(Granularity::kVpPrefixPathComm), "GILL-asp-comm");
}

TEST(GenerateFilters, FromComponent1Result) {
  red::Component1Result component1;
  component1.redundant.insert(red::VpPrefix{1, pfx("10.0.0.0/24")});
  component1.redundant.insert(red::VpPrefix{3, pfx("10.0.1.0/24")});

  const auto table = generate_filters(component1, {7});
  EXPECT_EQ(table.drop_rule_count(), 2u);
  EXPECT_TRUE(table.is_anchor(7));
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24")));
  EXPECT_FALSE(table.accept(make(3, "10.0.1.0/24")));
  EXPECT_TRUE(table.accept(make(3, "10.0.0.0/24")));
}

TEST(GenerateFilters, FineGranularityUsesTrainingUpdates) {
  red::Component1Result component1;
  component1.redundant.insert(red::VpPrefix{1, pfx("10.0.0.0/24")});

  bgp::UpdateStream training;
  training.push(make(1, "10.0.0.0/24", {1, 2}));
  training.push(make(1, "10.0.0.0/24", {1, 3}));
  training.push(make(2, "10.0.0.0/24", {9, 9}));  // not redundant

  const auto table = generate_filters(
      component1, {}, Granularity::kVpPrefixPath, &training);
  EXPECT_EQ(table.drop_rule_count(), 2u);
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24", {1, 2})));
  EXPECT_FALSE(table.accept(make(1, "10.0.0.0/24", {1, 3})));
  EXPECT_TRUE(table.accept(make(1, "10.0.0.0/24", {1, 4})));
  EXPECT_TRUE(table.accept(make(2, "10.0.0.0/24", {9, 9})));
}

TEST(ApplyFilters, StatsAndRetainedStream) {
  FilterTable table;
  table.add_drop(1, pfx("10.0.0.0/24"));
  bgp::UpdateStream stream;
  stream.push(make(1, "10.0.0.0/24"));
  stream.push(make(1, "10.0.1.0/24"));
  stream.push(make(2, "10.0.0.0/24"));

  bgp::UpdateStream retained;
  const auto stats = apply_filters(table, stream, &retained);
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(stats.retained, 2u);
  EXPECT_NEAR(stats.matched_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(retained.size(), 2u);
}

TEST(RouteMapEngine, LinearScanSemantics) {
  RouteMapEngine engine;
  engine.add_rule(1, pfx("10.0.0.0/8"));  // covering prefix drops specifics
  EXPECT_FALSE(engine.accept(make(1, "10.1.2.0/24")));
  EXPECT_TRUE(engine.accept(make(2, "10.1.2.0/24")));
  EXPECT_TRUE(engine.accept(make(1, "11.0.0.0/24")));
  EXPECT_EQ(engine.rule_count(), 1u);
}

TEST(FilterTable, DescribeListsAnchorsAndRuleCount) {
  FilterTable table;
  table.add_anchor(3);
  table.add_anchor(1);
  table.add_drop(2, pfx("10.0.0.0/24"));
  const std::string description = table.describe();
  EXPECT_NE(description.find("from vp1 accept all"), std::string::npos);
  EXPECT_NE(description.find("from vp3 accept all"), std::string::npos);
  EXPECT_NE(description.find("1 drop rules"), std::string::npos);
  EXPECT_NE(description.find("default accept"), std::string::npos);
}

}  // namespace
}  // namespace gill::filt
