#include <gtest/gtest.h>

#include "feed/json.hpp"
#include "feed/live_feed.hpp"

namespace gill::feed {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  for (const char* text : {"null", "true", "false", "0", "-17", "3.25",
                           "\"hello\"", "[]", "{}"}) {
    const auto value = Json::parse(text);
    ASSERT_TRUE(value.has_value()) << text;
    const auto again = Json::parse(value->dump());
    ASSERT_TRUE(again.has_value()) << value->dump();
    EXPECT_EQ(*value, *again);
  }
}

TEST(Json, NestedStructure) {
  const char* text =
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null, "f": true}})";
  const auto value = Json::parse(text);
  ASSERT_TRUE(value.has_value());
  const Json* a = value->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(value->find("d")->find("e")->is_null());
  EXPECT_EQ(value->find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const auto value = Json::parse(R"("line\nbreak \"quoted\" A")");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->as_string(), "line\nbreak \"quoted\" A");
  // Dump re-escapes control characters.
  const auto again = Json::parse(value->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*value, *again);
}

TEST(Json, RejectsMalformed) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "01a",
        "{\"a\":1} trailing", "[1 2]", "\"bad\\escape\"", "\"\\u12\""}) {
    EXPECT_FALSE(Json::parse(text).has_value()) << text;
  }
}

TEST(Json, DeepNestingIsBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(Json, NumbersPreserveIntegers) {
  const auto value = Json::parse("[1693526400, 4200000000]");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->dump(), "[1693526400,4200000000]");
}

// ---------------------------------------------------------------------------
// Live feed
// ---------------------------------------------------------------------------

LiveMessage sample_message() {
  LiveMessage message;
  message.vp = 42;
  message.timestamp = 1693526400;
  message.peer_asn = 65010;
  message.path = bgp::AsPath{65010, 65020, 64500};
  message.communities = bgp::CommunitySet{{65010, 100}};
  message.announcements = {pfx("203.0.113.0/24"), pfx("198.51.100.0/24")};
  message.withdrawals = {pfx("192.0.2.0/24")};
  return message;
}

TEST(LiveFeed, MessageRoundTrip) {
  const auto message = sample_message();
  const std::string encoded = encode_live(message);
  EXPECT_NE(encoded.find("\"type\":\"UPDATE\""), std::string::npos);
  EXPECT_NE(encoded.find("\"peer_asn\":\"65010\""), std::string::npos);
  const auto decoded = decode_live(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(LiveFeed, ParsesHandWrittenRisStyleMessage) {
  const char* text =
      R"({"type":"UPDATE","timestamp":100,"peer_asn":"64496","vp":7,)"
      R"("path":[64496,64500],"announcements":[{"prefixes":)"
      R"(["10.0.0.0/24","10.0.1.0/24"]}],"withdrawals":["10.9.0.0/16"]})";
  const auto message = decode_live(text);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->vp, 7u);
  EXPECT_EQ(message->peer_asn, 64496u);
  EXPECT_EQ(message->announcements.size(), 2u);
  EXPECT_EQ(message->withdrawals.size(), 1u);
  EXPECT_TRUE(message->communities.empty());
}

TEST(LiveFeed, RejectsNonUpdateAndMalformed) {
  EXPECT_FALSE(decode_live(R"({"type":"KEEPALIVE"})").has_value());
  EXPECT_FALSE(decode_live(R"({"timestamp": 1})").has_value());
  EXPECT_FALSE(decode_live("not json").has_value());
  EXPECT_FALSE(decode_live(
                   R"({"type":"UPDATE","timestamp":1,"path":"oops"})")
                   .has_value());
  EXPECT_FALSE(
      decode_live(
          R"({"type":"UPDATE","timestamp":1,"withdrawals":["bad/99"]})")
          .has_value());
}

TEST(LiveFeed, RejectsOutOfRangeNumericFields) {
  // A live feed is untrusted input: every numeric field is bounds-checked
  // and a violation rejects the whole message instead of wrapping silently.
  // peer_asn beyond 32 bits, non-digits, or the wrong type.
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"peer_asn":"4294967296"})")
          .has_value());
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"peer_asn":"12x4"})")
          .has_value());
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":1,"peer_asn":""})")
                   .has_value());
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":1,"peer_asn":5})")
                   .has_value());
  EXPECT_TRUE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"peer_asn":"4294967295"})")
          .has_value());

  // Timestamps: negative, fractional, or absurdly large.
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":-5})").has_value());
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1.5})").has_value());
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1e30})").has_value());

  // Path hops and VP ids past 32 bits, negative, or fractional.
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"path":[4294967296]})")
          .has_value());
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":1,"path":[-1]})")
                   .has_value());
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":1,"vp":-2})")
                   .has_value());
  EXPECT_FALSE(decode_live(R"({"type":"UPDATE","timestamp":1,"vp":1.25})")
                   .has_value());

  // Community halves are 16-bit.
  EXPECT_FALSE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"community":[[70000,1]]})")
          .has_value());
  EXPECT_TRUE(
      decode_live(R"({"type":"UPDATE","timestamp":1,"community":[[65535,1]]})")
          .has_value());
}

TEST(LiveFeed, RejectsMismatchedBracketNesting) {
  // Never throws, never accepts: broken nesting fails JSON parsing and
  // decode_live reports nullopt.
  for (const char* text :
       {R"({"type":"UPDATE","timestamp":1)",                     // unclosed {
        R"({"type":"UPDATE","timestamp":1,"path":[1,2})",        // [ closed by }
        R"({"type":"UPDATE","timestamp":1,"path":[1,2]]})",      // extra ]
        R"({"type":"UPDATE","timestamp":1}})",                   // extra }
        R"([{"type":"UPDATE","timestamp":1})",                   // unclosed [
        R"({"type":"UPDATE","announcements":[{"prefixes":["10.0.0.0/8"]})"}) {
    EXPECT_FALSE(decode_live(text).has_value()) << text;
  }
}

TEST(LiveFeed, StreamGroupingMergesSharedAttributes) {
  bgp::UpdateStream stream;
  for (const char* prefix : {"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"}) {
    bgp::Update update;
    update.vp = 1;
    update.time = 500;
    update.prefix = pfx(prefix);
    update.path = bgp::AsPath{65001, 64500};
    stream.push(update);
  }
  bgp::Update other;
  other.vp = 2;
  other.time = 500;
  other.prefix = pfx("10.0.0.0/24");
  other.path = bgp::AsPath{65002, 64500};
  stream.push(other);
  stream.sort();

  const auto messages = to_live_messages(stream);
  ASSERT_EQ(messages.size(), 2u);  // three prefixes share one message
  EXPECT_EQ(messages[0].announcements.size(), 3u);
  EXPECT_EQ(messages[1].announcements.size(), 1u);
}

TEST(LiveFeed, NdjsonStreamRoundTrip) {
  bgp::UpdateStream stream;
  for (int i = 0; i < 20; ++i) {
    bgp::Update update;
    update.vp = static_cast<bgp::VpId>(i % 3);
    update.time = 100 + i * 7;
    update.prefix = pfx(i % 2 ? "10.0.0.0/24" : "10.0.1.0/24");
    if (i % 5 == 0) {
      update.withdrawal = true;
    } else {
      update.path = bgp::AsPath{65000 + static_cast<bgp::AsNumber>(i % 3),
                                64500};
      update.communities = bgp::CommunitySet{{65001, static_cast<std::uint16_t>(i)}};
    }
    stream.push(update);
  }
  stream.sort();

  const std::string ndjson = encode_stream_ndjson(stream);
  const auto decoded = decode_stream_ndjson(ndjson);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded->updates()[i], stream.updates()[i]);
  }
}

TEST(LiveFeed, NdjsonRejectsCorruptLine) {
  bgp::UpdateStream stream;
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65001};
  stream.push(update);
  std::string ndjson = encode_stream_ndjson(stream);
  ndjson += "garbage line\n";
  EXPECT_FALSE(decode_stream_ndjson(ndjson).has_value());
}

}  // namespace
}  // namespace gill::feed
