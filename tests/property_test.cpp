// Property-based tests: invariants checked across randomized inputs with
// parameterized seeds (TEST_P). These complement the per-module unit tests
// by sweeping whole input families.
#include <gtest/gtest.h>

#include <random>
#include <span>

#include "bgp/delta.hpp"
#include "feed/live_feed.hpp"
#include "filters/filters.hpp"
#include "mrt/mrt.hpp"
#include "netbase/prefix_trie.hpp"
#include "redundancy/definitions.hpp"
#include "redundancy/reconstitution.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "wire/messages.hpp"

namespace gill {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull,
                                           99991ull));

// ---------------------------------------------------------------------------
// Random-update generation shared by several properties.
// ---------------------------------------------------------------------------

bgp::Update random_update(std::mt19937_64& rng) {
  bgp::Update update;
  update.vp = static_cast<bgp::VpId>(rng() % 64);
  update.time = static_cast<bgp::Timestamp>(rng() % 100000);
  if (rng() % 4 == 0) {
    std::array<std::uint8_t, 16> bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    update.prefix = net::Prefix(net::IpAddress::v6(bytes),
                                static_cast<unsigned>(rng() % 129));
  } else {
    update.prefix = net::Prefix(
        net::IpAddress::v4(static_cast<std::uint32_t>(rng())),
        static_cast<unsigned>(rng() % 33));
  }
  if (rng() % 5 == 0) {
    update.withdrawal = true;
    return update;
  }
  const std::size_t hops = 1 + rng() % 6;
  std::vector<bgp::AsNumber> path;
  for (std::size_t i = 0; i < hops; ++i) {
    path.push_back(static_cast<bgp::AsNumber>(1 + rng() % 70000));
  }
  update.path = bgp::AsPath(std::move(path));
  const std::size_t communities = rng() % 4;
  for (std::size_t i = 0; i < communities; ++i) {
    bgp::insert_community(update.communities,
                          bgp::Community(static_cast<std::uint16_t>(rng()),
                                         static_cast<std::uint16_t>(rng())));
  }
  return update;
}

// ---------------------------------------------------------------------------
// Serialization round trips under random inputs.
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, MrtRoundTripsRandomStreams) {
  std::mt19937_64 rng(GetParam());
  bgp::UpdateStream stream;
  for (int i = 0; i < 300; ++i) stream.push(random_update(rng));
  stream.sort();
  const auto bytes = mrt::encode_stream(stream);
  const auto decoded = mrt::decode_stream(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded->updates()[i], stream.updates()[i]);
  }
}

TEST_P(SeededProperty, NdjsonRoundTripsRandomStreams) {
  std::mt19937_64 rng(GetParam() ^ 0xfeed);
  bgp::UpdateStream stream;
  for (int i = 0; i < 200; ++i) stream.push(random_update(rng));
  stream.sort();
  const auto text = feed::encode_stream_ndjson(stream);
  const auto decoded = feed::decode_stream_ndjson(text);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded->updates()[i], stream.updates()[i]);
  }
}

TEST_P(SeededProperty, WireUpdateRoundTripsRandomMessages) {
  std::mt19937_64 rng(GetParam() ^ 0x123ee);
  for (int i = 0; i < 100; ++i) {
    wire::UpdateMessage message;
    const std::size_t nlri = 1 + rng() % 4;
    for (std::size_t p = 0; p < nlri; ++p) {
      message.nlri.emplace_back(
          net::IpAddress::v4(static_cast<std::uint32_t>(rng())),
          static_cast<unsigned>(rng() % 33));
    }
    message.path = bgp::AsPath{static_cast<bgp::AsNumber>(1 + rng() % 70000),
                               static_cast<bgp::AsNumber>(1 + rng() % 70000)};
    message.next_hop = static_cast<std::uint32_t>(rng());
    const auto bytes = wire::encode(message);
    std::size_t consumed = 0;
    const auto decoded = wire::decode(bytes, consumed);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(std::get<wire::UpdateMessage>(*decoded), message);
  }
}

TEST_P(SeededProperty, WireDecoderNeverCrashesOnMutatedInput) {
  std::mt19937_64 rng(GetParam() ^ 0xfafa);
  wire::UpdateMessage message;
  message.nlri = {net::Prefix::parse("203.0.113.0/24").value()};
  message.path = bgp::AsPath{65001, 65002};
  message.next_hop = 7;
  auto bytes = wire::encode(message);
  for (int round = 0; round < 500; ++round) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    }
    std::size_t consumed = 0;
    // Must terminate and never read out of bounds (ASAN-clean by
    // construction of the bounds-checked cursor); result may be anything.
    (void)wire::decode(mutated, consumed);
    EXPECT_LE(consumed, mutated.size());
  }
}

TEST_P(SeededProperty, WireDecoderSurvivesRandomAndTruncatedByteStrings) {
  // 2000 strings per seed x 5 seeds = 10k adversarial inputs: pure noise,
  // noise behind a valid marker, and valid encodes cut short. The decoder
  // must never crash, never report consuming more than it was given, and a
  // resynchronization walk over any input must terminate.
  std::mt19937_64 rng(GetParam() ^ 0x5eed5);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes;
    switch (rng() % 3) {
      case 0: {  // pure random bytes
        bytes.resize(rng() % 128);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
        break;
      }
      case 1: {  // a valid marker followed by random header/body bytes
        bytes.assign(16, 0xFF);
        const std::size_t tail = rng() % 64;
        for (std::size_t i = 0; i < tail; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      default: {  // a well-formed message truncated mid-flight
        wire::Message message;
        switch (rng() % 4) {
          case 0: {
            wire::OpenMessage open;
            open.as = static_cast<bgp::AsNumber>(rng());
            open.hold_time = static_cast<std::uint16_t>(rng());
            open.bgp_id = static_cast<std::uint32_t>(rng());
            message = open;
            break;
          }
          case 1:
            message = wire::KeepaliveMessage{};
            break;
          case 2:
            message = wire::NotificationMessage{
                static_cast<std::uint8_t>(rng()),
                static_cast<std::uint8_t>(rng())};
            break;
          default: {
            wire::UpdateMessage update;
            const std::size_t nlri = 1 + rng() % 3;
            for (std::size_t p = 0; p < nlri; ++p) {
              update.nlri.emplace_back(
                  net::IpAddress::v4(static_cast<std::uint32_t>(rng())),
                  static_cast<unsigned>(rng() % 33));
            }
            update.path =
                bgp::AsPath{static_cast<bgp::AsNumber>(1 + rng() % 70000)};
            update.next_hop = static_cast<std::uint32_t>(rng());
            message = update;
            break;
          }
        }
        bytes = wire::encode(message);
        bytes.resize(rng() % (bytes.size() + 1));  // truncate anywhere
        break;
      }
    }

    // Walk the buffer exactly like the daemon's poll loop does.
    std::size_t offset = 0;
    std::size_t iterations = 0;
    while (offset < bytes.size()) {
      ASSERT_LT(++iterations, bytes.size() + 2) << "walk did not terminate";
      std::size_t consumed = 0;
      wire::DecodeError error = wire::DecodeError::kNone;
      const auto decoded = wire::decode(
          std::span(bytes.data() + offset, bytes.size() - offset), consumed,
          error);
      ASSERT_LE(consumed, bytes.size() - offset);
      if (decoded) {
        ASSERT_GT(consumed, 0u);
        EXPECT_EQ(error, wire::DecodeError::kNone);
      } else if (consumed == 0) {
        EXPECT_EQ(error, wire::DecodeError::kIncomplete);
        break;  // starved: needs more bytes
      } else {
        EXPECT_NE(error, wire::DecodeError::kNone);
      }
      offset += consumed;
    }
  }
}

TEST_P(SeededProperty, MrtReaderNeverCrashesOnTruncation) {
  std::mt19937_64 rng(GetParam() ^ 0x111);
  bgp::UpdateStream stream;
  for (int i = 0; i < 20; ++i) stream.push(random_update(rng));
  const auto bytes = mrt::encode_stream(stream);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    mrt::Reader reader(std::span(bytes.data(), cut));
    while (reader.next()) {
    }
    // Either cleanly done or flagged broken — never UB.
    SUCCEED();
  }
}

// ---------------------------------------------------------------------------
// Trie vs. brute force.
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, TrieLongestMatchAgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam() ^ 0x7e1e);
  net::PrefixTrie<int> trie;
  std::vector<std::pair<net::Prefix, int>> entries;
  for (int i = 0; i < 300; ++i) {
    const net::Prefix prefix(
        net::IpAddress::v4(static_cast<std::uint32_t>(rng())),
        static_cast<unsigned>(rng() % 25));
    trie.insert(prefix, i);
    entries.emplace_back(prefix, i);
  }
  for (int probe = 0; probe < 200; ++probe) {
    const net::Prefix query(
        net::IpAddress::v4(static_cast<std::uint32_t>(rng())), 32);
    const auto got = trie.longest_match(query);
    // Brute force: the longest covering prefix (last inserted wins ties,
    // matching the trie's overwrite semantics).
    int best_length = -1;
    const int* best_value = nullptr;
    for (const auto& [prefix, value] : entries) {
      if (prefix.covers(query) &&
          static_cast<int>(prefix.length()) >= best_length) {
        best_length = static_cast<int>(prefix.length());
        best_value = &value;
      }
    }
    if (best_value == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(static_cast<int>(got->first.length()), best_length);
    }
  }
}

// ---------------------------------------------------------------------------
// Routing invariants across random topologies.
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, RoutingFixedPointInvariants) {
  const auto topology = topo::generate_artificial(
      {.as_count = 250, .seed = GetParam()});
  sim::RoutingEngine engine(topology);
  std::mt19937_64 rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 5; ++trial) {
    const auto origin =
        static_cast<bgp::AsNumber>(rng() % topology.as_count());
    const auto routing = engine.compute(origin);
    EXPECT_TRUE(routing.has_route(origin));
    EXPECT_EQ(routing.length(origin), 0);
    for (bgp::AsNumber as = 0; as < topology.as_count(); ++as) {
      if (!routing.has_route(as)) continue;
      const auto path = routing.path(as);
      // Paths are loop-free, start at the AS, end at the origin, and have
      // the advertised length.
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.hops().front(), as);
      EXPECT_EQ(path.origin(), origin);
      EXPECT_EQ(path.size(), routing.length(as) + 1u);
      std::set<bgp::AsNumber> unique(path.hops().begin(), path.hops().end());
      EXPECT_EQ(unique.size(), path.size());
      // Every hop uses a real adjacency.
      for (const auto& link : path.links()) {
        EXPECT_TRUE(topology.adjacent(link.from, link.to))
            << link.from << "-" << link.to;
      }
      // The next hop's route is consistent (suffix property).
      if (routing.next_hop(as) != as) {
        EXPECT_TRUE(routing.has_route(routing.next_hop(as)));
        EXPECT_EQ(routing.length(routing.next_hop(as)) + 1,
                  routing.length(as));
      }
    }
  }
}

TEST_P(SeededProperty, FailingALinkNeverImprovesRoutes) {
  const auto topology = topo::generate_artificial(
      {.as_count = 200, .seed = GetParam() ^ 0x51});
  sim::RoutingEngine engine(topology);
  std::mt19937_64 rng(GetParam());
  const auto origin = static_cast<bgp::AsNumber>(rng() % topology.as_count());
  const auto before = engine.compute(origin);
  const auto& link = topology.links()[rng() % topology.links().size()];
  engine.fail_link(link.a, link.b);
  const auto after = engine.compute(origin);
  for (bgp::AsNumber as = 0; as < topology.as_count(); ++as) {
    if (!after.has_route(as)) continue;
    ASSERT_TRUE(before.has_route(as));  // failures cannot create routes
    // Same preference class => the path cannot get shorter.
    if (after.route_class(as) == before.route_class(as)) {
      EXPECT_GE(after.length(as), before.length(as));
    } else {
      // A class change after a failure is always a downgrade.
      EXPECT_LT(static_cast<int>(after.route_class(as)),
                static_cast<int>(before.route_class(as)));
    }
  }
}

// ---------------------------------------------------------------------------
// Redundancy-pipeline invariants across random workloads.
// ---------------------------------------------------------------------------

TEST_P(SeededProperty, StricterDefinitionsAreSubsets) {
  const auto topology = topo::generate_artificial(
      {.as_count = 150, .seed = GetParam() ^ 0x3});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 150; as += 5) config.vp_hosts.push_back(as);
  config.rng_seed = GetParam();
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = GetParam() ^ 0x9;
  workload.duration = 1200;
  const auto stream = sim::generate_workload(internet, 0, workload);
  const auto annotated = bgp::DeltaTracker::annotate_stream(stream);
  for (std::size_t i = 0; i < annotated.size(); i += 3) {
    for (std::size_t j = 0; j < annotated.size(); j += 7) {
      if (i == j) continue;
      const auto& a = annotated[i];
      const auto& b = annotated[j];
      if (red::redundant_with(a, b, red::Definition::kDef3)) {
        EXPECT_TRUE(red::redundant_with(a, b, red::Definition::kDef2));
      }
      if (red::redundant_with(a, b, red::Definition::kDef2)) {
        EXPECT_TRUE(red::redundant_with(a, b, red::Definition::kDef1));
      }
    }
  }
}

TEST_P(SeededProperty, ReconstitutionPowerIsMonotoneInVpSets) {
  std::mt19937_64 rng(GetParam() ^ 0x44);
  // Random per-prefix stream with bursts.
  std::vector<bgp::Update> updates;
  for (int burst = 0; burst < 30; ++burst) {
    const auto t = static_cast<bgp::Timestamp>(burst * 500);
    const std::size_t members = 1 + rng() % 5;
    for (std::size_t m = 0; m < members; ++m) {
      bgp::Update u;
      u.vp = static_cast<bgp::VpId>(rng() % 8);
      u.time = t + static_cast<bgp::Timestamp>(rng() % 50);
      u.prefix = net::Prefix::parse("10.0.0.0/24").value();
      u.path = bgp::AsPath{static_cast<bgp::AsNumber>(1 + rng() % 5),
                           static_cast<bgp::AsNumber>(6 + rng() % 5)};
      updates.push_back(u);
    }
  }
  std::sort(updates.begin(), updates.end(),
            [](const bgp::Update& a, const bgp::Update& b) {
              return a.time < b.time;
            });
  red::PrefixReconstitution reconstitution(updates);
  // RP({v0}) <= RP({v0,v1}) <= ... (superset monotonicity).
  std::vector<bgp::VpId> set;
  double previous = 0.0;
  for (bgp::VpId vp = 0; vp < 8; ++vp) {
    set.push_back(vp);
    const double rp = reconstitution.reconstitution_power(set);
    EXPECT_GE(rp, previous - 1e-12);
    previous = rp;
  }
  EXPECT_DOUBLE_EQ(previous, reconstitution.reconstitution_power(set));
}

TEST_P(SeededProperty, FilterDecisionsArePureAndConsistent) {
  std::mt19937_64 rng(GetParam() ^ 0x77);
  filt::FilterTable table;
  std::vector<bgp::Update> dropped;
  for (int i = 0; i < 200; ++i) {
    const auto update = random_update(rng);
    if (rng() % 2) {
      table.add_drop(update.vp, update.prefix);
      dropped.push_back(update);
    }
  }
  for (const auto& update : dropped) {
    EXPECT_FALSE(table.accept(update));
    // Accept decisions are pure: same input, same answer.
    EXPECT_FALSE(table.accept(update));
  }
  // Anchor status overrides every drop rule.
  for (const auto& update : dropped) table.add_anchor(update.vp);
  for (const auto& update : dropped) {
    EXPECT_TRUE(table.accept(update));
  }
}

}  // namespace
}  // namespace gill
