#include <gtest/gtest.h>

#include <numeric>

#include "topology/generator.hpp"
#include "topology/topology.hpp"

namespace gill::topo {
namespace {

TEST(AsTopology, AdjacencyAndRelationships) {
  AsTopology topology(4);
  topology.add_c2p(1, 0);
  topology.add_p2p(1, 2);
  topology.add_c2p(3, 1);
  topology.freeze();

  EXPECT_EQ(topology.relationship(1, 0), Relationship::kCustomerToProvider);
  EXPECT_EQ(topology.relationship(0, 1), Relationship::kCustomerToProvider);
  EXPECT_EQ(topology.relationship(1, 2), Relationship::kPeerToPeer);
  EXPECT_FALSE(topology.relationship(0, 3).has_value());

  EXPECT_TRUE(topology.adjacent(1, 2));
  EXPECT_FALSE(topology.adjacent(0, 2));
  EXPECT_EQ(topology.degree(1), 3u);
  EXPECT_EQ(topology.neighbors(1), (std::vector<AsNumber>{0, 2, 3}));
  EXPECT_TRUE(topology.is_stub(3));
  EXPECT_TRUE(topology.is_transit(1));
  EXPECT_EQ(topology.p2p_link_count(), 1u);
}

TEST(AsTopology, DuplicateLinksIgnored) {
  AsTopology topology(3);
  topology.add_c2p(1, 0);
  topology.add_c2p(1, 0);
  topology.add_p2p(1, 0);  // already adjacent as c2p
  topology.add_p2p(1, 2);
  topology.add_p2p(2, 1);
  EXPECT_EQ(topology.link_count(), 2u);
}

TEST(AsTopology, CustomerConeCountsDistinctAses) {
  // Diamond: 3 and 2 are customers of 1; 4 is customer of both 3 and 2.
  AsTopology topology(5);
  topology.add_c2p(2, 1);
  topology.add_c2p(3, 1);
  topology.add_c2p(4, 2);
  topology.add_c2p(4, 3);
  topology.freeze();
  EXPECT_EQ(topology.customer_cone_size(1), 4u);  // 1,2,3,4 — 4 not doubled
  EXPECT_EQ(topology.customer_cone_size(2), 2u);
  EXPECT_EQ(topology.customer_cone_size(4), 1u);
  const auto all = topology.all_customer_cone_sizes();
  EXPECT_EQ(all[1], 4u);
  EXPECT_EQ(all[0], 1u);
}

TEST(Generator, ArtificialMatchesSizeAndDegree) {
  const auto topology =
      generate_artificial({.as_count = 2000, .seed = 42});
  EXPECT_EQ(topology.as_count(), 2000u);
  const double average_degree =
      2.0 * static_cast<double>(topology.link_count()) / 2000.0;
  EXPECT_GT(average_degree, 4.5);
  EXPECT_LT(average_degree, 8.0);
  EXPECT_EQ(topology.tier1().size(), 3u);
  // Tier-1 clique fully meshed as p2p.
  const auto& tier1 = topology.tier1();
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      EXPECT_EQ(topology.relationship(tier1[i], tier1[j]),
                Relationship::kPeerToPeer);
    }
  }
}

TEST(Generator, ArtificialIsConnectedViaProvidersOrPeers) {
  const auto topology = generate_artificial({.as_count = 500, .seed = 7});
  // Undirected reachability from AS 0 must span the graph.
  std::vector<char> seen(topology.as_count(), 0);
  std::vector<AsNumber> stack{0};
  seen[0] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const AsNumber u = stack.back();
    stack.pop_back();
    ++count;
    for (AsNumber v : topology.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, topology.as_count());
}

TEST(Generator, C2pEdgesFollowLevels) {
  const auto topology = generate_artificial({.as_count = 800, .seed = 3});
  const auto& levels = topology.levels();
  for (const Link& link : topology.links()) {
    if (link.rel == Relationship::kCustomerToProvider) {
      // Customer is strictly deeper than provider => the c2p DAG is acyclic.
      EXPECT_GT(levels[link.a], levels[link.b]);
    }
  }
}

TEST(Generator, DegreeDistributionIsHeavyTailed) {
  const auto topology = generate_artificial({.as_count = 3000, .seed = 11});
  std::size_t degree_le_2 = 0;
  std::size_t max_degree = 0;
  for (AsNumber as = 0; as < topology.as_count(); ++as) {
    if (topology.degree(as) <= 2) ++degree_le_2;
    max_degree = std::max(max_degree, topology.degree(as));
  }
  // Power-law-ish: many low-degree nodes, a hub far above the mean.
  EXPECT_GT(degree_le_2, topology.as_count() / 3);
  EXPECT_GT(max_degree, 100u);
}

TEST(Generator, PrunedHitsTargetSizeWithoutLeaves) {
  const auto topology = generate_pruned({.target_as_count = 600, .seed = 5});
  EXPECT_EQ(topology.as_count(), 600u);
  std::size_t leaves = 0;
  for (AsNumber as = 0; as < topology.as_count(); ++as) {
    if (topology.degree(as) <= 1) ++leaves;
  }
  // Leaf pruning ran: almost no degree-<=1 nodes survive.
  EXPECT_LT(leaves, topology.as_count() / 20);
}

TEST(Generator, DeterministicForFixedSeed) {
  const auto a = generate_artificial({.as_count = 300, .seed = 9});
  const auto b = generate_artificial({.as_count = 300, .seed = 9});
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i], b.links()[i]);
  }
  const auto c = generate_artificial({.as_count = 300, .seed = 10});
  EXPECT_NE(a.links().size() == c.links().size()
                ? !std::equal(a.links().begin(), a.links().end(),
                              c.links().begin())
                : true,
            false);
}

TEST(Classification, Fig5AndTable5Rules) {
  const auto topology = fig5_topology();
  const auto categories = classify_ases(topology);
  EXPECT_EQ(categories[1], AsCategory::kTier1);
  EXPECT_EQ(categories[3], AsCategory::kTier1);
  // AS5 has customer 7 => transit; AS7 and AS0 are stubs... but the
  // hypergiant rule (top-15 degree) absorbs everything in an 8-node graph,
  // so only relative ordering is checked here.
  EXPECT_EQ(categories.size(), 8u);
}

TEST(Classification, CategoriesCoverLargeTopology) {
  const auto topology = generate_artificial({.as_count = 2000, .seed = 2});
  const auto categories = classify_ases(topology);
  std::array<std::size_t, kCategoryCount + 1> histogram{};
  for (const auto c : categories) ++histogram[static_cast<std::size_t>(c)];
  EXPECT_EQ(histogram[static_cast<std::size_t>(AsCategory::kTier1)], 3u);
  EXPECT_GT(histogram[static_cast<std::size_t>(AsCategory::kStub)], 1000u);
  EXPECT_GT(histogram[static_cast<std::size_t>(AsCategory::kTransit1)], 0u);
  EXPECT_GT(histogram[static_cast<std::size_t>(AsCategory::kTransit2)], 0u);
  // Hypergiants: 15 minus those claimed by Tier-1.
  EXPECT_GE(histogram[static_cast<std::size_t>(AsCategory::kHypergiant)], 10u);
}

TEST(Fig5, MatchesPaperStructure) {
  const auto topology = fig5_topology();
  EXPECT_EQ(topology.relationship(2, 1), Relationship::kCustomerToProvider);
  EXPECT_EQ(topology.relationship(4, 1), Relationship::kCustomerToProvider);
  EXPECT_EQ(topology.relationship(6, 2), Relationship::kCustomerToProvider);
  EXPECT_EQ(topology.relationship(2, 4), Relationship::kPeerToPeer);
  EXPECT_EQ(topology.relationship(1, 3), Relationship::kPeerToPeer);
  EXPECT_EQ(topology.relationship(5, 6), Relationship::kPeerToPeer);
  EXPECT_EQ(topology.relationship(7, 5), Relationship::kCustomerToProvider);
}

TEST(AsTopology, NeighborsMergeAllRoles) {
  AsTopology topology(5);
  topology.add_c2p(1, 0);
  topology.add_c2p(2, 1);
  topology.add_p2p(1, 3);
  topology.freeze();
  EXPECT_EQ(topology.neighbors(1), (std::vector<AsNumber>{0, 2, 3}));
  EXPECT_TRUE(topology.neighbors(4).empty());
}

TEST(Generator, PrunedKeepsConnectivity) {
  const auto topology = generate_pruned({.target_as_count = 400, .seed = 12});
  std::vector<char> seen(topology.as_count(), 0);
  std::vector<AsNumber> stack{0};
  seen[0] = 1;
  std::size_t count = 0;
  while (!stack.empty()) {
    const AsNumber u = stack.back();
    stack.pop_back();
    ++count;
    for (AsNumber v : topology.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  // Pruning leaves may disconnect stragglers; the giant component must
  // dominate.
  EXPECT_GT(count, topology.as_count() * 9 / 10);
}

TEST(Generator, AverageDegreeTracksParameter) {
  for (const double degree : {4.0, 6.1, 9.0}) {
    const auto topology = generate_artificial(
        {.as_count = 1500, .average_degree = degree, .seed = 13});
    const double measured =
        2.0 * static_cast<double>(topology.link_count()) / 1500.0;
    EXPECT_NEAR(measured, degree, degree * 0.35) << degree;
  }
}

TEST(Classification, HighestCategoryWinsAmbiguities) {
  // A Tier-1 AS is also top-degree (hypergiant candidate) and transit —
  // the Table 5 rule assigns the highest ID (Tier-1).
  const auto topology = generate_artificial({.as_count = 1000, .seed = 14});
  const auto categories = classify_ases(topology);
  for (const AsNumber tier1 : topology.tier1()) {
    EXPECT_EQ(categories[tier1], AsCategory::kTier1);
  }
}

}  // namespace
}  // namespace gill::topo
