// The parallel analysis engine (DESIGN.md §9): ThreadPool semantics, the
// byte-determinism guarantee of the parallel pipeline stages at 1/2/8
// threads, the GILL_ANALYSIS_SERIAL escape hatch, the cross-refresh score
// cache, and the Platform's asynchronous filter refresh (generation
// counter, stale-result discard, sessions served while a job is in flight).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "anchor/scoring.hpp"
#include "collector/platform.hpp"
#include "parallel/thread_pool.hpp"
#include "redundancy/component1.hpp"
#include "sampling/gill_pipeline.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace gill {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit semantics.
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  EXPECT_GT(pool.shards_executed(), 1u);
}

TEST(ThreadPool, SubmitReturnsTheJobsValue) {
  par::ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, NestedParallelForInsideSubmitDoesNotDeadlock) {
  // A refresh job occupies the (only) worker and then fans out its stages
  // with parallel_for: the caller participates, so this must complete even
  // on a 1-thread pool.
  par::ThreadPool pool(1);
  auto future = pool.submit([&pool] {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(1000, [&sum](std::size_t begin, std::size_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    return sum.load();
  });
  EXPECT_EQ(future.get(), 1000u);
}

TEST(ThreadPool, DestructorRunsEveryQueuedJob) {
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // drain-and-join
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SerialEscapeHatchReadsTheEnvironment) {
  ::unsetenv("GILL_ANALYSIS_SERIAL");
  EXPECT_FALSE(par::serial_forced());
  ::setenv("GILL_ANALYSIS_SERIAL", "1", 1);
  EXPECT_TRUE(par::serial_forced());
  ::setenv("GILL_ANALYSIS_SERIAL", "0", 1);
  EXPECT_FALSE(par::serial_forced()) << "\"0\" means off, like a bool flag";
  ::unsetenv("GILL_ANALYSIS_SERIAL");
}

TEST(ThreadPool, AutoThreadCountIsClamped) {
  EXPECT_GE(par::auto_thread_count(), 1u);
  EXPECT_LE(par::auto_thread_count(4), 4u);
  EXPECT_EQ(par::auto_thread_count(0), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: the parallel stages produce byte-identical results at any
// thread count (the ISSUE's 1/2/8 guarantee). The simulator provides a
// realistic mid-size stream.
// ---------------------------------------------------------------------------

struct PipelineWorld {
  topo::AsTopology topology;
  sim::InternetConfig config;
  std::unique_ptr<sim::Internet> internet;
  bgp::UpdateStream ribs;
  bgp::UpdateStream training;

  explicit PipelineWorld(std::uint64_t seed = 7)
      : topology(topo::generate_artificial({.as_count = 120, .seed = seed})) {
    for (bgp::AsNumber as = 0; as < 120; as += 5) {
      config.vp_hosts.push_back(as);
    }
    config.rng_seed = seed + 1;
    config.path_exploration_probability = 0.3;
    internet = std::make_unique<sim::Internet>(topology, config);
    ribs = internet->rib_dump(0);
    sim::WorkloadConfig workload;
    workload.seed = seed + 2;
    training = sim::generate_workload(*internet, 8, workload);
  }
};

const PipelineWorld& pipeline_world() {
  static PipelineWorld world;
  return world;
}

void expect_identical(const sample::GillPipelineResult& serial,
                      const sample::GillPipelineResult& parallel,
                      const char* what) {
  EXPECT_EQ(serial.component1.redundant, parallel.component1.redundant)
      << what;
  EXPECT_EQ(serial.component1.nonredundant, parallel.component1.nonredundant)
      << what;
  EXPECT_EQ(serial.component1.total_updates, parallel.component1.total_updates)
      << what;
  EXPECT_EQ(serial.component1.nonredundant_updates,
            parallel.component1.nonredundant_updates)
      << what;
  // Byte determinism, not approximation: the parallel stages preserve the
  // serial floating-point accumulation order.
  EXPECT_EQ(serial.component1.mean_rp, parallel.component1.mean_rp) << what;
  EXPECT_EQ(serial.anchors, parallel.anchors) << what;
  EXPECT_EQ(serial.scored_vps, parallel.scored_vps) << what;
  ASSERT_EQ(serial.scores.size(), parallel.scores.size()) << what;
  for (std::size_t n = 0; n < serial.scores.size(); ++n) {
    ASSERT_EQ(serial.scores[n], parallel.scores[n]) << what << " row " << n;
  }
  EXPECT_EQ(serial.filters.describe(), parallel.filters.describe()) << what;
}

TEST(Determinism, PipelineIsByteIdenticalAtOneTwoAndEightThreads) {
  const PipelineWorld& world = pipeline_world();
  const sample::GillConfig config;
  const auto serial = sample::run_gill_pipeline(world.ribs, world.training,
                                                {}, config);
  ASSERT_GT(serial.component1.total_updates, 0u);
  ASSERT_FALSE(serial.anchors.empty());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    sample::PipelineRuntime runtime;
    runtime.pool = &pool;
    const auto parallel = sample::run_gill_pipeline(world.ribs,
                                                    world.training, {},
                                                    config, runtime);
    expect_identical(serial, parallel,
                     threads == 1 ? "1 thread"
                                  : (threads == 2 ? "2 threads" : "8 threads"));
    EXPECT_GT(pool.shards_executed(), 0u) << "the pool actually ran shards";
  }
}

TEST(Determinism, Component1MatchesSerialAtEveryThreadCount) {
  const PipelineWorld& world = pipeline_world();
  const auto serial = red::find_redundant_updates(world.training);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    const auto parallel =
        red::find_redundant_updates(world.training, {}, &pool);
    EXPECT_EQ(serial.redundant, parallel.redundant);
    EXPECT_EQ(serial.nonredundant, parallel.nonredundant);
    EXPECT_EQ(serial.mean_rp, parallel.mean_rp);
  }
}

TEST(Determinism, SerialEnvDisablesThePoolPath) {
  const PipelineWorld& world = pipeline_world();
  par::ThreadPool pool(4);
  ::setenv("GILL_ANALYSIS_SERIAL", "1", 1);
  const auto forced = red::find_redundant_updates(world.training, {}, &pool);
  const std::uint64_t shards_after_forced = pool.shards_executed();
  ::unsetenv("GILL_ANALYSIS_SERIAL");
  const auto serial = red::find_redundant_updates(world.training);
  EXPECT_EQ(shards_after_forced, 0u) << "the hatch bypasses the pool";
  EXPECT_EQ(forced.redundant, serial.redundant);
  EXPECT_EQ(forced.mean_rp, serial.mean_rp);
}

// ---------------------------------------------------------------------------
// Score cache: a pair whose feature epochs did not change is served from
// the cache, bit-identically.
// ---------------------------------------------------------------------------

std::vector<anchor::EventFeatureMatrix> synthetic_matrices(std::size_t vps,
                                                           std::size_t events) {
  std::vector<anchor::EventFeatureMatrix> matrices(events);
  std::uint64_t state = 0x243F6A8885A308D3ull;
  for (auto& matrix : matrices) {
    matrix.rows.resize(vps);
    for (auto& row : matrix.rows) {
      for (auto& cell : row) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        cell = static_cast<double>(state >> 40) / 1024.0;
      }
    }
  }
  return matrices;
}

TEST(ScoreCache, SecondIdenticalRefreshHitsEveryPair) {
  const std::vector<bgp::VpId> vps = {3, 7, 11, 19};
  const auto matrices = synthetic_matrices(vps.size(), 5);
  anchor::ScoreCache cache;
  const auto first =
      anchor::redundancy_scores(matrices, vps, nullptr, &cache);
  EXPECT_EQ(cache.hits, 0u);
  EXPECT_EQ(cache.misses, 6u);  // C(4,2) pairs all rescored
  const auto second =
      anchor::redundancy_scores(matrices, vps, nullptr, &cache);
  EXPECT_EQ(cache.hits, 6u) << "unchanged features: every pair cached";
  EXPECT_EQ(cache.misses, 6u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t n = 0; n < first.size(); ++n) {
    EXPECT_EQ(first[n], second[n]) << "cache hits are bit-identical";
  }
}

TEST(ScoreCache, ChangedFeaturesInvalidateOnlyTouchedPairs) {
  const std::vector<bgp::VpId> vps = {1, 2, 3, 4};
  auto matrices = synthetic_matrices(vps.size(), 4);
  anchor::ScoreCache cache;
  (void)anchor::redundancy_scores(matrices, vps, nullptr, &cache);
  ASSERT_EQ(cache.misses, 6u);
  // Swap VP 0's and VP 1's value in one feature column. The column's
  // mean/stddev are unchanged, so VP 2's and VP 3's z-scored rows stay
  // bit-identical and their pair keeps its cache entry, while every pair
  // touching VP 0 or VP 1 rescores. (An additive perturbation would shift
  // the column statistics and legitimately invalidate everyone.)
  for (auto& matrix : matrices) {
    ASSERT_NE(matrix.rows[0][0], matrix.rows[1][0]);
    std::swap(matrix.rows[0][0], matrix.rows[1][0]);
  }
  (void)anchor::redundancy_scores(matrices, vps, nullptr, &cache);
  EXPECT_EQ(cache.hits, 1u) << "the untouched (2,3) pair stays cached";
  EXPECT_EQ(cache.misses, 11u);
}

TEST(ScoreCache, PoolAndSerialAgreeWithCaching) {
  const std::vector<bgp::VpId> vps = {2, 4, 6, 8, 10, 12};
  const auto matrices = synthetic_matrices(vps.size(), 6);
  anchor::ScoreCache serial_cache;
  anchor::ScoreCache pool_cache;
  const auto serial =
      anchor::redundancy_scores(matrices, vps, nullptr, &serial_cache);
  par::ThreadPool pool(4);
  const auto parallel =
      anchor::redundancy_scores(matrices, vps, &pool, &pool_cache);
  for (std::size_t n = 0; n < serial.size(); ++n) {
    EXPECT_EQ(serial[n], parallel[n]);
  }
  EXPECT_EQ(serial_cache.misses, pool_cache.misses);
}

// ---------------------------------------------------------------------------
// Platform: asynchronous refresh off the event loop.
// ---------------------------------------------------------------------------

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

/// Feeds both platforms the same redundant two-VP workload.
void feed_redundant_updates(collect::Platform& platform, bgp::VpId vp0,
                            bgp::VpId vp1, bgp::Timestamp base) {
  for (int round = 0; round < 6; ++round) {
    const auto t = static_cast<bgp::Timestamp>(base + round * 1000);
    for (const char* prefix : {"10.0.0.0/24", "10.0.1.0/24"}) {
      bgp::Update update;
      update.prefix = pfx(prefix);
      update.path = round % 2 == 0 ? bgp::AsPath{65010, 65020}
                                   : bgp::AsPath{65010, 65021, 65020};
      platform.remote(vp0).send_update(update);
      platform.remote(vp1).send_update(update);
      platform.step(t);
    }
  }
}

TEST(AsyncRefresh, ProducesTheSameFiltersAsTheSynchronousPath) {
  collect::PlatformConfig sync_config;  // analysis_threads = 0
  collect::Platform sync(sync_config);
  collect::PlatformConfig async_config;
  async_config.analysis_threads = 2;
  collect::Platform async(async_config);
  ASSERT_EQ(async.analysis_thread_count(), 2u);

  for (collect::Platform* platform : {&sync, &async}) {
    const auto vp0 = platform->add_peer(65010, 0);
    const auto vp1 = platform->add_peer(65011, 0);
    platform->step(1);
    feed_redundant_updates(*platform, vp0, vp1, 2);
  }

  sync.refresh_filters(10'000);
  EXPECT_EQ(sync.filter_generation(), 1u);

  async.refresh_filters(10'000);
  EXPECT_TRUE(async.mirror().empty()) << "mirror snapshot moved into the job";
  async.wait_for_refresh();
  EXPECT_FALSE(async.refresh_in_flight());
  EXPECT_EQ(async.filter_generation(), 1u);

  EXPECT_GT(async.filters().drop_rule_count(), 0u);
  EXPECT_EQ(sync.published_filter_document(),
            async.published_filter_document());
  EXPECT_EQ(sync.published_anchor_document(),
            async.published_anchor_document());
}

TEST(AsyncRefresh, SessionsKeepFlowingWhileAJobIsInFlight) {
  std::promise<void> job_started;
  auto started = job_started.get_future();
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> armed{true};

  collect::PlatformConfig config;
  config.analysis_threads = 1;
  config.refresh_job_hook = [&, release] {
    if (armed.exchange(false)) {
      job_started.set_value();
      release.wait();
    }
  };
  collect::Platform platform(config);
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);
  feed_redundant_updates(platform, vp0, vp1, 2);
  const std::size_t stored_before = platform.store().stored();

  platform.refresh_filters(10'000);
  started.wait();  // the worker is now inside the pipeline job
  ASSERT_TRUE(platform.refresh_in_flight());
  EXPECT_EQ(platform.filter_generation(), 0u) << "nothing installed yet";

  // The event loop keeps serving sessions: new updates land in the store
  // and in the next window's mirror while the job computes.
  for (int i = 0; i < 4; ++i) {
    bgp::Update update;
    update.prefix = pfx("10.9.0.0/24");
    update.path = bgp::AsPath{65010, 65030};
    platform.remote(vp0).send_update(update);
    platform.step(static_cast<bgp::Timestamp>(10'001 + i));
  }
  EXPECT_GT(platform.store().stored(), stored_before);
  EXPECT_EQ(platform.mirror().size(), 4u) << "next window accumulates";
  EXPECT_TRUE(platform.refresh_in_flight());

  release_promise.set_value();
  platform.wait_for_refresh();
  EXPECT_FALSE(platform.refresh_in_flight());
  EXPECT_EQ(platform.filter_generation(), 1u);
  EXPECT_GT(platform.filters().drop_rule_count(), 0u);
  EXPECT_EQ(platform.mirror().size(), 4u)
      << "the in-flight window's mirror survives the install";
}

TEST(AsyncRefresh, StaleResultIsDiscardedWhenANewerGenerationLands) {
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  collect::PlatformConfig config;
  config.analysis_threads = 1;
  config.refresh_job_hook = [release] { release.wait(); };
  collect::Platform platform(config);
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);

  feed_redundant_updates(platform, vp0, vp1, 2);
  platform.refresh_filters(10'000);  // generation 1, blocked in the hook
  feed_redundant_updates(platform, vp0, vp1, 20'000);
  platform.refresh_filters(30'000);  // generation 2, queued behind it
  ASSERT_TRUE(platform.refresh_in_flight());

  release_promise.set_value();
  platform.wait_for_refresh();
  // Both jobs completed by harvest time: only the newest generation
  // installs; the older result is discarded, not rolled back to.
  EXPECT_EQ(platform.filter_generation(), 2u);
  EXPECT_EQ(platform.metrics().counter_total(
                "gill_collector_filter_refresh_stale_total"),
            1u);
  EXPECT_EQ(platform.metrics().counter_total(
                "gill_collector_filter_refreshes_total"),
            1u)
      << "the stale job never counts as an installed refresh";
}

TEST(AsyncRefresh, StepInstallsACompletedJobAndRearmsTheTrigger) {
  collect::PlatformConfig config;
  config.analysis_threads = 1;
  // Seconds-scale period: every step below stays inside the 90 s hold
  // timer, so the sessions survive and keep mirroring between windows.
  config.component1_refresh = 100;
  collect::Platform platform(config);
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);
  const auto feed_window = [&](bgp::Timestamp base) {
    for (int round = 0; round < 6; ++round) {
      const auto t = static_cast<bgp::Timestamp>(base + round * 10);
      for (const char* prefix : {"10.0.0.0/24", "10.0.1.0/24"}) {
        bgp::Update update;
        update.prefix = pfx(prefix);
        update.path = round % 2 == 0 ? bgp::AsPath{65010, 65020}
                                     : bgp::AsPath{65010, 65021, 65020};
        platform.remote(vp0).send_update(update);
        platform.remote(vp1).send_update(update);
        platform.step(t);
      }
    }
  };
  feed_window(2);  // ends at t=52, inside the first refresh period
  ASSERT_GT(platform.mirror().size(), 0u);
  platform.step(140);  // the periodic trigger submits the job
  ASSERT_TRUE(platform.refresh_in_flight());
  platform.wait_for_refresh();
  EXPECT_EQ(platform.filter_generation(), 1u);

  // A second window triggers a second generation through step() alone.
  feed_window(150);
  ASSERT_GT(platform.mirror().size(), 0u);
  platform.step(245);
  platform.wait_for_refresh();
  EXPECT_EQ(platform.filter_generation(), 2u);
  EXPECT_EQ(platform.metrics().counter_total(
                "gill_collector_filter_refreshes_total"),
            2u);
}

TEST(AsyncRefresh, SerialEnvFallsBackToTheSynchronousPath) {
  ::setenv("GILL_ANALYSIS_SERIAL", "1", 1);
  collect::PlatformConfig config;
  config.analysis_threads = 4;
  collect::Platform platform(config);
  EXPECT_EQ(platform.analysis_thread_count(), 0u) << "no pool spawned";
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);
  feed_redundant_updates(platform, vp0, vp1, 2);
  platform.refresh_filters(10'000);  // runs inline
  EXPECT_FALSE(platform.refresh_in_flight());
  EXPECT_EQ(platform.filter_generation(), 1u);
  EXPECT_GT(platform.filters().drop_rule_count(), 0u);
  ::unsetenv("GILL_ANALYSIS_SERIAL");
}

}  // namespace
}  // namespace gill
