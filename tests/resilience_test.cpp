// Session resilience: fault injection at the transport layer, the reconnect
// FSM riding over it, Platform-level peer health / quarantine, and a chaos
// run mixing corruption, drops, and resets over thousands of simulated
// seconds. Everything is seeded and deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "collector/platform.hpp"
#include "daemon/daemon.hpp"
#include "daemon/faults.hpp"
#include "mrt/mrt.hpp"
#include "wire/messages.hpp"

namespace gill::collect {
namespace {

using daemon::FaultProfile;
using daemon::FaultyTransport;
using daemon::SessionState;

std::vector<std::uint8_t> bytes_of(const char* text) {
  return std::vector<std::uint8_t>(text, text + std::string(text).size());
}

// ---------------------------------------------------------------------------
// FaultyTransport unit behaviour (each fault in isolation, rate = 1).
// ---------------------------------------------------------------------------

TEST(FaultyTransport, NoFaultsPassesThroughVerbatim) {
  FaultyTransport transport({});
  const auto message = bytes_of("hello");
  transport.write_to_daemon(message);
  EXPECT_EQ(transport.to_daemon.read(), message);
  EXPECT_EQ(transport.fault_stats().delivered, 1u);
  EXPECT_EQ(transport.fault_stats().dropped, 0u);
}

TEST(FaultyTransport, DropRateOneDeliversNothing) {
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultyTransport transport(profile);
  for (int i = 0; i < 10; ++i) transport.write_to_daemon(bytes_of("x"));
  EXPECT_TRUE(transport.to_daemon.empty());
  EXPECT_EQ(transport.fault_stats().dropped, 10u);
  EXPECT_EQ(transport.fault_stats().delivered, 0u);
}

TEST(FaultyTransport, DuplicateRateOneDeliversTwice) {
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  FaultyTransport transport(profile);
  const auto message = bytes_of("abc");
  transport.write_to_daemon(message);
  EXPECT_EQ(transport.to_daemon.size(), 2 * message.size());
  EXPECT_EQ(transport.fault_stats().duplicated, 1u);
}

TEST(FaultyTransport, ReorderSwapsAdjacentMessages) {
  FaultProfile profile;
  profile.reorder_rate = 1.0;
  FaultyTransport transport(profile);
  transport.write_to_daemon(bytes_of("first"));
  // Held back: nothing on the wire yet.
  EXPECT_TRUE(transport.to_daemon.empty());
  EXPECT_EQ(transport.fault_stats().reordered, 1u);
  transport.write_to_daemon(bytes_of("second"));
  EXPECT_EQ(transport.to_daemon.read(), bytes_of("secondfirst"));
}

TEST(FaultyTransport, TruncateShortensTheMessage) {
  FaultProfile profile;
  profile.truncate_rate = 1.0;
  FaultyTransport transport(profile);
  const auto message = bytes_of("a-reasonably-long-message");
  transport.write_to_daemon(message);
  EXPECT_LT(transport.to_daemon.size(), message.size());
  EXPECT_GE(transport.to_daemon.size(), 1u);
  EXPECT_EQ(transport.fault_stats().truncated, 1u);
}

TEST(FaultyTransport, CorruptFlipsBytesButKeepsLength) {
  FaultProfile profile;
  profile.corrupt_rate = 1.0;
  FaultyTransport transport(profile);
  const auto message = bytes_of("a-reasonably-long-message");
  transport.write_to_daemon(message);
  const auto received = transport.to_daemon.read();
  ASSERT_EQ(received.size(), message.size());
  EXPECT_NE(received, message);
  EXPECT_EQ(transport.fault_stats().corrupted, 1u);
}

TEST(FaultyTransport, ResetDisconnectsAndLosesInFlight) {
  FaultProfile profile;
  profile.reset_rate = 1.0;
  FaultyTransport transport(profile);
  const std::uint64_t epoch = transport.epoch();
  transport.write_to_daemon(bytes_of("doomed"));
  EXPECT_FALSE(transport.connected());
  EXPECT_EQ(transport.epoch(), epoch + 1);
  EXPECT_EQ(transport.fault_stats().resets, 1u);
  // Writes into the dead connection are lost, not queued.
  transport.write_to_peer(bytes_of("also-doomed"));
  EXPECT_EQ(transport.fault_stats().lost_disconnected, 1u);
  EXPECT_TRUE(transport.to_daemon.empty());
  EXPECT_TRUE(transport.to_peer.empty());
}

TEST(FaultyTransport, SameSeedSameFaults) {
  FaultProfile profile;
  profile.corrupt_rate = 0.3;
  profile.drop_rate = 0.2;
  profile.duplicate_rate = 0.2;
  profile.seed = 1234;
  FaultyTransport a(profile);
  FaultyTransport b(profile);
  for (int i = 0; i < 200; ++i) {
    const auto message = bytes_of("deterministic-fault-stream");
    a.write_to_daemon(message);
    b.write_to_daemon(message);
  }
  EXPECT_EQ(a.to_daemon.read(), b.to_daemon.read());
  EXPECT_EQ(a.fault_stats().corrupted, b.fault_stats().corrupted);
  EXPECT_EQ(a.fault_stats().dropped, b.fault_stats().dropped);
  EXPECT_EQ(a.fault_stats().duplicated, b.fault_stats().duplicated);
  EXPECT_GT(a.fault_stats().corrupted, 0u);
  EXPECT_GT(a.fault_stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// A daemon session surviving an injected reset end to end.
// ---------------------------------------------------------------------------

TEST(Resilience, SessionReestablishesAfterInjectedReset) {
  FaultyTransport transport({});  // manual reset below; no random faults
  daemon::MrtStore store;
  daemon::BgpDaemon bgp_daemon(1, 65000, transport, nullptr, &store);
  daemon::RetryPolicy policy;
  policy.jitter = 0.0;
  bgp_daemon.set_retry_policy(policy);
  daemon::FakePeer peer(65010, transport);

  bgp_daemon.start(0);
  peer.poll();
  bgp_daemon.poll(1);
  ASSERT_EQ(bgp_daemon.state(), SessionState::kEstablished);

  transport.disconnect();  // the "network" kills the connection
  bgp_daemon.poll(2);
  EXPECT_EQ(bgp_daemon.state(), SessionState::kIdle);
  for (Timestamp now = 3; now < 10; ++now) {
    bgp_daemon.tick(now);
    peer.poll();
    bgp_daemon.poll(now);
  }
  EXPECT_EQ(bgp_daemon.state(), SessionState::kEstablished);
  EXPECT_TRUE(peer.established());
  EXPECT_EQ(bgp_daemon.stats().reconnects, 1u);
}

// ---------------------------------------------------------------------------
// Platform peer health and quarantine.
// ---------------------------------------------------------------------------

PlatformConfig resilient_config() {
  PlatformConfig config;
  config.retry.jitter = 0.0;
  config.health.flap_threshold = 3;
  config.health.flap_window = 1000;
  return config;
}

TEST(Health, RepeatedFlapsQuarantineThePeer) {
  Platform platform(resilient_config());
  const VpId vp = platform.add_peer(65010, 0);
  platform.step(1);
  ASSERT_EQ(platform.daemon_of(vp).state(), SessionState::kEstablished);
  EXPECT_EQ(platform.health(vp).status, PeerStatus::kHealthy);

  // Kill the session over and over; the third flap in the window triggers
  // the quarantine and the platform stops driving the peer.
  Timestamp now = 1;
  while (platform.health(vp).status != PeerStatus::kQuarantined && now < 500) {
    platform.transport_of(vp).disconnect();
    ++now;
    platform.step(now);  // observes the flap
    for (int i = 0; i < 4; ++i) platform.step(++now);  // reconnect + handshake
  }
  EXPECT_EQ(platform.health(vp).status, PeerStatus::kQuarantined);
  EXPECT_EQ(platform.health(vp).flaps, 3u);
  EXPECT_EQ(platform.health(vp).quarantines, 1u);
  EXPECT_EQ(platform.quarantined_count(), 1u);

  // Quarantined peers are frozen: no reconnects, state stays put.
  const auto state = platform.daemon_of(vp).state();
  for (int i = 0; i < 50; ++i) platform.step(++now);
  EXPECT_EQ(platform.daemon_of(vp).state(), state);

  const HealthSnapshot snapshot = platform.health_snapshot();
  EXPECT_EQ(snapshot.quarantined, 1u);
  ASSERT_EQ(snapshot.peers.size(), 1u);
  EXPECT_EQ(snapshot.peers[0].vp, vp);
  EXPECT_EQ(snapshot.peers[0].status, PeerStatus::kQuarantined);
  EXPECT_EQ(snapshot.peers[0].flaps, 3u);
  const std::string report = format(snapshot);
  EXPECT_NE(report.find("quarantined"), std::string::npos);
  EXPECT_NE(report.find("flaps=3"), std::string::npos);
}

TEST(Health, TimedQuarantineReleasesThePeer) {
  auto config = resilient_config();
  config.health.quarantine_duration = 100;
  Platform platform(config);
  const VpId vp = platform.add_peer(65010, 0);
  Timestamp now = 0;
  platform.step(++now);
  while (platform.health(vp).status != PeerStatus::kQuarantined && now < 500) {
    platform.transport_of(vp).disconnect();
    ++now;
    platform.step(now);
    for (int i = 0; i < 4; ++i) platform.step(++now);
  }
  ASSERT_EQ(platform.health(vp).status, PeerStatus::kQuarantined);

  // After the quarantine window the platform drives the session again and
  // the peer works its way back to Established.
  now += 200;
  for (int i = 0; i < 80; ++i) platform.step(++now);
  EXPECT_EQ(platform.health(vp).status, PeerStatus::kHealthy);
  EXPECT_EQ(platform.daemon_of(vp).state(), SessionState::kEstablished);
}

TEST(Health, QuarantinedPeerDataIsPurgedFromTheMirror) {
  auto config = resilient_config();
  config.component1_refresh = 1 << 30;  // no automatic refresh mid-test
  Platform platform(config);
  const VpId flappy = platform.add_peer(65010, 0);
  const VpId steady = platform.add_peer(65020, 0);
  Timestamp now = 1;
  platform.step(now);
  ASSERT_EQ(platform.daemon_of(flappy).state(), SessionState::kEstablished);

  platform.remote(flappy).send_synthetic_burst(5, 10u << 24);
  platform.remote(steady).send_synthetic_burst(5, 20u << 24);
  platform.step(++now);
  ASSERT_EQ(platform.mirror().size(), 10u);

  while (platform.health(flappy).status != PeerStatus::kQuarantined &&
         now < 500) {
    platform.transport_of(flappy).disconnect();
    ++now;
    platform.step(now);
    for (int i = 0; i < 4; ++i) platform.step(++now);
  }
  ASSERT_EQ(platform.health(flappy).status, PeerStatus::kQuarantined);

  // The refresh drops the quarantined VP's mirrored updates pre-sampling.
  platform.refresh_filters(now);
  for (const auto& update : platform.mirror()) {
    EXPECT_NE(update.vp, flappy);
  }
}

// ---------------------------------------------------------------------------
// Chaos: 8 peers, 1% corruption + drops + resets, 10k simulated seconds.
// ---------------------------------------------------------------------------

TEST(Chaos, PlatformSurvivesFaultyPeersFor10kSeconds) {
  auto config = resilient_config();
  config.component1_refresh = 1 << 30;
  // Flaps are expected under a 1% reset rate; quarantines must heal so the
  // platform keeps its feeds (and the release path gets exercised).
  config.health.flap_threshold = 6;
  config.health.flap_window = 600;
  config.health.quarantine_duration = 300;
  Platform platform(config);

  FaultProfile profile;
  profile.corrupt_rate = 0.01;
  profile.drop_rate = 0.01;
  profile.reset_rate = 0.01;
  profile.seed = 2024;

  std::vector<VpId> vps;
  for (int i = 0; i < 8; ++i) {
    vps.push_back(
        platform.add_faulty_peer(static_cast<bgp::AsNumber>(65010 + i), 0,
                                 profile));
  }

  for (Timestamp now = 1; now <= 10000; ++now) {
    for (const VpId vp : vps) {
      auto& remote = platform.remote(vp);
      if (!remote.established()) continue;
      // Keep traffic flowing: a keepalive refreshes the hold timer, and
      // every 13th second each VP announces a fresh prefix.
      if (now % 7 == 0) remote.send_keepalive();
      if (now % 13 == 0) {
        bgp::Update update;
        update.prefix = net::Prefix(
            net::IpAddress::v4((10u << 24) | (vp << 16) |
                               (static_cast<std::uint32_t>(now / 13) & 0xFFFF)),
            32);
        update.path = bgp::AsPath{static_cast<bgp::AsNumber>(65010 + vp)};
        remote.send_update(update);
      }
    }
    platform.step(now);
  }

  // Calm the network down and let every backoff run out (cap is 64 s).
  for (const VpId vp : vps) {
    auto* faulty = dynamic_cast<FaultyTransport*>(&platform.transport_of(vp));
    ASSERT_NE(faulty, nullptr);
    EXPECT_GT(faulty->fault_stats().resets +
                  faulty->fault_stats().corrupted +
                  faulty->fault_stats().dropped,
              0u)
        << "vp " << vp << " saw no faults at all";
    faulty->set_profile(FaultProfile{});
  }
  for (Timestamp now = 10001; now <= 10500; ++now) {
    for (const VpId vp : vps) {
      if (platform.remote(vp).established() && now % 7 == 0) {
        platform.remote(vp).send_keepalive();
      }
    }
    platform.step(now);
  }

  // Every non-quarantined session found its way back to Established.
  std::size_t established = 0;
  for (const VpId vp : vps) {
    if (platform.health(vp).status == PeerStatus::kQuarantined) continue;
    EXPECT_EQ(platform.daemon_of(vp).state(), SessionState::kEstablished)
        << "vp " << vp << "\n"
        << format(platform.health_snapshot());
    ++established;
  }
  EXPECT_GT(established, 0u);

  // The faults really happened and the daemons noticed — asserted through
  // the shared metrics registry, which aggregates across all 8 VPs.
  EXPECT_GT(platform.metrics().counter_total("gill_daemon_reconnects_total"),
            0u);
  EXPECT_GT(
      platform.metrics().counter_total("gill_daemon_decode_errors_total"),
      0u);
  // The per-daemon snapshot view agrees with the registry.
  std::uint64_t total_reconnects = 0;
  for (const VpId vp : vps) {
    total_reconnects += platform.daemon_of(vp).stats().reconnects;
  }
  EXPECT_EQ(total_reconnects,
            platform.metrics().counter_total("gill_daemon_reconnects_total"));

  // The MRT archive survived the chaos: every record decodes back.
  EXPECT_GT(platform.store().stored(), 0u);
  mrt::Reader reader(platform.store().writer().buffer());
  std::size_t records = 0;
  while (reader.next()) ++records;
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(records, platform.store().stored());
}

}  // namespace
}  // namespace gill::collect
