// Topology-mapping example (Fig. 1 + use case III): how combining VP
// views grows the observed AS map, why p2p links at the edge are the hard
// part, and what an AS-relationship inference recovers from the sample.
#include <cstdio>
#include <random>

#include "simulator/internet.hpp"
#include "topology/generator.hpp"
#include "usecases/as_relationships.hpp"
#include "usecases/detectors.hpp"

int main() {
  using namespace gill;

  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 7});
  std::size_t total_p2p = 0, total_c2p = 0;
  for (const auto& link : topology.links()) {
    (link.is_p2p() ? total_p2p : total_c2p) += 1;
  }
  std::printf("world: %u ASes, %zu links (%zu p2p, %zu c2p)\n",
              topology.as_count(), topology.link_count(), total_p2p,
              total_c2p);

  // Deploy VPs one by one (random placement) and watch coverage grow.
  sim::InternetConfig config;
  std::vector<bgp::AsNumber> order(topology.as_count());
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(8);
  std::shuffle(order.begin(), order.end(), rng);
  config.vp_hosts.assign(order.begin(), order.begin() + 200);
  sim::Internet internet(topology, config);

  std::printf("\n%-8s%-12s%-12s%-12s\n", "#VPs", "p2p seen", "c2p seen",
              "coverage");
  for (const std::size_t vp_count : {1u, 5u, 20u, 50u, 100u, 200u}) {
    std::vector<bgp::VpId> vps;
    for (bgp::VpId vp = 0; vp < vp_count; ++vp) vps.push_back(vp);
    const auto links = internet.visible_links(vps);
    std::size_t p2p = 0, c2p = 0;
    for (const auto& link : links) {
      const auto rel = topology.relationship(link.from, link.to);
      if (rel && *rel == topo::Relationship::kPeerToPeer) {
        ++p2p;
      } else if (rel) {
        ++c2p;
      }
    }
    // Directed links counted once per direction; normalize to undirected.
    std::printf("%-8zu%-12s%-12s%-12s\n", vp_count,
                (std::to_string(100 * p2p / 2 / total_p2p) + "%").c_str(),
                (std::to_string(std::min<std::size_t>(
                     100, 100 * c2p / 2 / total_c2p)) + "%").c_str(),
                (std::to_string(100 * vp_count / topology.as_count()) + "%")
                    .c_str());
  }
  std::printf("\np2p links are only visible near their endpoints "
              "(Gao-Rexford hides them from providers) — exactly Fig. 1's "
              "point: more edge VPs are needed to map peering.\n");

  // Infer relationships from the 50-VP view and validate.
  std::vector<bgp::VpId> fifty;
  for (bgp::VpId vp = 0; vp < 50; ++vp) fifty.push_back(vp);
  uc::DataSample sample;
  for (const bgp::VpId vp : fifty) {
    sample.ribs.append(internet.rib_dump_vp(vp, 0));
  }
  const auto inferred = uc::infer_relationships(sample);
  const auto validation = uc::validate_relationships(inferred, topology);
  std::printf("\nAS-relationship inference from 50 VPs: %zu links inferred, "
              "%.0f%% accurate (c2p direction %.0f%%)\n",
              inferred.size(), validation.accuracy() * 100.0,
              validation.c2p_accuracy() * 100.0);

  const auto cones = uc::customer_cones(inferred);
  std::size_t biggest = 0;
  bgp::AsNumber biggest_as = 0;
  for (const auto& [as, size] : cones) {
    if (size > biggest) {
      biggest = size;
      biggest_as = as;
    }
  }
  std::printf("largest inferred customer cone: AS%u with %zu ASes "
              "(ground truth: %zu)\n",
              biggest_as, biggest, topology.customer_cone_size(biggest_as));
  return 0;
}
