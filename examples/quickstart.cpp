// Quickstart: the GILL pipeline in ~80 lines.
//
//  1. build a small simulated Internet and collect a training stream,
//  2. run Component #1 (redundant updates) + Component #2 (anchor VPs),
//  3. generate filters,
//  4. apply them to fresh data and compare volumes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "sampling/gill_pipeline.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main() {
  using namespace gill;

  // A 200-AS Internet with 40 vantage points.
  const auto topology = topo::generate_artificial({.as_count = 200, .seed = 1});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 200; as += 5) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);

  // One day of BGP activity (failures, MOAS conflicts, community changes).
  const auto ribs = internet.rib_dump(0);
  sim::WorkloadConfig workload;
  workload.seed = 2;
  workload.duration = 4 * 3600;
  workload.hotspot_fraction = 0.3;
  const auto training = sim::generate_workload(internet, 10, workload);
  std::printf("training stream: %zu updates from %zu VPs\n", training.size(),
              training.vps().size());

  // The whole GILL pipeline in one call.
  const auto result = sample::run_gill_pipeline(
      ribs, training, topo::classify_ases(topology), sample::GillConfig{});

  std::printf("Component #1: %zu of %zu (vp, prefix) pairs redundant; "
              "|U|/|V| = %.2f (mean RP %.2f)\n",
              result.component1.redundant.size(),
              result.component1.redundant.size() +
                  result.component1.nonredundant.size(),
              result.component1.retained_fraction(),
              result.component1.mean_rp);
  std::printf("Component #2: %zu anchor VPs from %zu probing events\n",
              result.anchors.size(), result.events_used);
  std::printf("filters: %zu drop rules, %zu anchors, default accept\n",
              result.filters.drop_rule_count(), result.filters.anchors().size());

  // Fresh data hits the installed filters.
  internet.ground_truth().clear();
  sim::WorkloadConfig fresh;
  fresh.seed = 3;
  fresh.hotspot_fraction = 0.3;
  const auto test = sim::generate_workload(internet, 5 * 3600, fresh);
  bgp::UpdateStream retained;
  const auto stats = filt::apply_filters(result.filters, test, &retained);
  std::printf("fresh hour: %zu updates -> %zu retained (%.0f%% discarded)\n",
              test.size(), retained.size(),
              stats.matched_fraction() * 100.0);

  std::printf("\npublished filter document:\n%s",
              result.filters.describe().c_str());
  return 0;
}
