// End-to-end platform demo (Fig. 9 + §9): the full GILL collector.
//
//  1. operators submit the peering form and confirm by email (two-step
//     vetting against the PeeringDB-like registry),
//  2. the platform spins up one BGP daemon per vetted peer (RFC 4271
//     handshake over the in-memory transport),
//  3. peers stream updates; everything is mirrored for the sampling run,
//  4. the orchestrator refreshes filters (Components #1 + #2) and installs
//     them into the daemons,
//  5. subsequent redundant traffic is discarded before the MRT store, and
//     the two public documents (filters, anchors) are published,
//  6. the run's metrics are dumped as a Prometheus exposition — the same
//     text gill_collectord serves live on GET /metrics.
#include <cstdio>

#include "cli_util.hpp"
#include "collector/platform.hpp"
#include "collector/vetting.hpp"

int main() {
  using namespace gill;
  using collect::PeeringRequest;

  // --- 1. peering vetting ---------------------------------------------------
  collect::AsOwnershipRegistry registry;  // the PeeringDB stand-in
  registry.register_owner("alpha.example", 65010);
  registry.register_owner("beta.example", 65011);
  collect::PeeringVetting vetting(registry);

  const auto token_a =
      vetting.submit(PeeringRequest{65010, "noc@alpha.example", "192.0.2.1"});
  const auto token_b =
      vetting.submit(PeeringRequest{65011, "noc@beta.example", "192.0.2.2"});
  const auto token_evil =
      vetting.submit(PeeringRequest{65010, "noc@evil.example", "192.0.2.9"});

  std::printf("vetting alpha: %s\n",
              std::string(to_string(
                  vetting.confirm(token_a, "noc@alpha.example")))
                  .c_str());
  std::printf("vetting beta:  %s\n",
              std::string(to_string(
                  vetting.confirm(token_b, "noc@beta.example")))
                  .c_str());
  std::printf("vetting evil:  %s (not the AS owner)\n",
              std::string(to_string(
                  vetting.confirm(token_evil, "noc@evil.example")))
                  .c_str());

  // --- 2. sessions ------------------------------------------------------------
  collect::PlatformConfig platform_config;
  platform_config.gill.use_anchors = true;
  // Register everything in the process-wide registry so the final metrics
  // dump sees the platform and session counters.
  platform_config.registry = &metrics::default_registry();
  collect::Platform platform(platform_config);
  std::vector<bgp::VpId> vps;
  for (const auto& accepted : vetting.accepted()) {
    vps.push_back(platform.add_peer(accepted.as, 0));
  }
  platform.step(1);
  for (const bgp::VpId vp : vps) {
    std::printf("VP%u session: %s (peer AS %u)\n", vp,
                std::string(daemon::to_string(platform.daemon_of(vp).state()))
                    .c_str(),
                platform.daemon_of(vp).peer_as());
  }

  // --- 3. traffic ------------------------------------------------------------
  auto announce = [&](bgp::VpId vp, const char* prefix,
                      std::initializer_list<bgp::AsNumber> path,
                      bgp::Timestamp t) {
    bgp::Update update;
    update.prefix = net::Prefix::parse(prefix).value();
    update.path = bgp::AsPath(path);
    platform.remote(vp).send_update(update);
    platform.step(t);
  };
  // Six rounds of correlated churn on two prefixes, seen by both VPs.
  for (int round = 0; round < 6; ++round) {
    const auto t = static_cast<bgp::Timestamp>(10 + round * 600);
    for (const char* prefix : {"203.0.113.0/24", "198.51.100.0/24"}) {
      const bool odd = round % 2;
      announce(vps[0], prefix,
               odd ? std::initializer_list<bgp::AsNumber>{65010, 64500}
                   : std::initializer_list<bgp::AsNumber>{65010, 64501, 64500},
               t);
      announce(vps[1], prefix,
               odd ? std::initializer_list<bgp::AsNumber>{65011, 64500}
                   : std::initializer_list<bgp::AsNumber>{65011, 64501, 64500},
               t);
    }
  }
  std::printf("\nafter 6 rounds: %zu updates stored, %zu mirrored for "
              "sampling\n",
              platform.store().stored(), platform.mirror().size());

  // --- 4. refresh ------------------------------------------------------------
  platform.refresh_filters(5000);
  std::printf("\nrefreshed filters:\n%s",
              platform.published_filter_document().c_str());
  std::printf("%s", platform.published_anchor_document().c_str());

  // --- 5. post-refresh traffic -------------------------------------------------
  const std::size_t before = platform.store().stored();
  announce(vps[0], "203.0.113.0/24", {65010, 64500}, 9000);
  announce(vps[1], "203.0.113.0/24", {65011, 64500}, 9000);
  std::printf("\npost-refresh round: %zu new updates stored (redundant "
              "copies discarded at the session)\n",
              platform.store().stored() - before);

  // The archive is real MRT: persist and reload it.
  const char* path = "/tmp/gill_quickstart_archive.mrt";
  platform.store().save(path);
  const auto reloaded = mrt::read_stream(path);
  std::printf("MRT archive round-trip: %zu records re-read from %s\n",
              reloaded ? reloaded->size() : 0, path);
  std::remove(path);

  // --- 6. observability -------------------------------------------------------
  std::printf("\nend-of-run metrics (what GET /metrics would have served):\n");
  cli::dump_metrics("-");
  return 0;
}
