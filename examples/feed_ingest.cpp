// Feed-ingestion example (§9 + §14): the two non-native ways BGP data
// enters GILL —
//   * a RIS-Live-style NDJSON stream (how GILL bootstraps from RIS/RV),
//   * a BMP (RFC 7854) byte stream from a monitored router —
// both run through the same filter pipeline before the MRT store.
#include <cstdio>

#include "daemon/bmp_ingest.hpp"
#include "feed/live_feed.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main() {
  using namespace gill;

  // A small world produces one hour of updates.
  const auto topology = topo::generate_artificial({.as_count = 150, .seed = 3});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 150; as += 5) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 4;
  const auto stream = sim::generate_workload(internet, 0, workload);

  // --- RIS-Live-style NDJSON round trip -----------------------------------
  const std::string ndjson = feed::encode_stream_ndjson(stream);
  std::printf("NDJSON feed: %zu updates -> %zu bytes (%zu messages)\n",
              stream.size(), ndjson.size(),
              feed::to_live_messages(stream).size());
  const auto first_newline = ndjson.find('\n');
  std::printf("first message: %.120s...\n",
              ndjson.substr(0, first_newline).c_str());
  const auto decoded = feed::decode_stream_ndjson(ndjson);
  std::printf("decoded back: %zu updates (lossless: %s)\n", decoded->size(),
              decoded->size() == stream.size() ? "yes" : "no");

  // --- BMP ingestion through filters ---------------------------------------
  // Drop everything from one busy prefix; everything else is stored.
  filt::FilterTable filters;
  const auto prefixes = stream.prefixes();
  filters.add_drop(0, prefixes[0]);
  daemon::MrtStore store;
  daemon::BmpIngest ingest(0, &filters, &store);

  // The monitored router mirrors each of VP 0's updates over BMP.
  std::size_t wrapped = 0;
  for (const auto& update : stream) {
    if (update.vp != 0) continue;
    wire::BmpRouteMonitoring monitoring;
    monitoring.peer.address = net::IpAddress::parse("192.0.2.1").value();
    monitoring.peer.as = 65010;
    monitoring.peer.timestamp_sec = static_cast<std::uint32_t>(update.time);
    if (update.withdrawal) {
      monitoring.update.withdrawn = {update.prefix};
    } else {
      monitoring.update.nlri = {update.prefix};
      monitoring.update.path = update.path;
      monitoring.update.communities = update.communities;
      monitoring.update.next_hop = 1;
    }
    ingest.feed(wire::encode_bmp(monitoring), update.time);
    ++wrapped;
  }
  std::printf("\nBMP feed: %zu Route Monitoring messages ingested\n", wrapped);
  std::printf("  received %zu updates, filtered %zu, stored %zu\n",
              ingest.stats().updates_received,
              ingest.stats().updates_filtered, ingest.stats().updates_stored);
  std::printf("  MRT archive now holds %zu records\n", store.stored());
  return 0;
}
