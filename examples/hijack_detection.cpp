// Hijack detection walkthrough: the paper's motivating scenario.
//
// Reconstructs Fig. 5 (the worked example of §4-§5) on the exact 7-AS
// topology: a link failure and an origin hijack happen; with the two
// "classic" VPs the hijack is invisible, while GILL's overshoot deployment
// (VP3, VP4) plus filters catches both events with fewer stored updates.
// Then runs DFOH-lite on a larger random world to score forged-origin
// hijack inference with and without the extra coverage.
#include <cstdio>

#include "simulator/internet.hpp"
#include "topology/generator.hpp"
#include "usecases/hijack.hpp"

namespace {

using namespace gill;

void fig5_walkthrough() {
  std::printf("=== Fig. 5 walkthrough ===\n");
  const auto topology = topo::fig5_topology();
  sim::InternetConfig config;
  config.vp_hosts = {2, 6, 4, 5};  // VP1..VP4 of the paper
  config.prefixes.resize(8);
  config.prefixes[4] = {net::Prefix::parse("10.4.1.0/24").value(),   // p1
                        net::Prefix::parse("10.4.2.0/24").value()};  // p2
  config.prefixes[6] = {net::Prefix::parse("10.6.3.0/24").value()};  // p3
  config.jitter = 5;
  sim::Internet internet(topology, config);

  // Event 1: the 2-4 peering fails. Event 2: AS7 hijacks p3.
  auto updates = internet.fail_link(2, 4, 1000);
  updates.append(internet.start_moas(
      7, net::Prefix::parse("10.6.3.0/24").value(), 1100));
  updates.sort();

  std::printf("collected updates (all four VPs):\n");
  for (const auto& update : updates) {
    std::printf("  VP%u  %s  path [%s]\n", update.vp + 1,
                update.prefix.str().c_str(), update.path.str().c_str());
  }
  std::printf("\nWith only VP1+VP2 (the status quo of Fig. 5a), the hijack "
              "is invisible:\n");
  bool hijack_visible_without = false;
  for (const auto& update : updates) {
    if (update.vp <= 1 && update.path.origin() == 7) {
      hijack_visible_without = true;
    }
  }
  std::printf("  hijacked route seen by VP1/VP2: %s\n",
              hijack_visible_without ? "yes" : "no");
  std::printf("VP4 (deployed near the attacker) observes it:\n");
  for (const auto& update : updates) {
    if (update.path.origin() == 7) {
      std::printf("  VP%u sees %s via [%s]  <-- hijacked route\n",
                  update.vp + 1, update.prefix.str().c_str(),
                  update.path.str().c_str());
    }
  }
  std::printf("\n");
}

void dfoh_demo() {
  std::printf("=== DFOH-lite on a 300-AS world ===\n");
  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 5});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 300; as += 3) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);
  const auto ribs = internet.rib_dump(0);
  const auto baseline = uc::BaselineView::from_stream(ribs);
  const uc::DfohDetector detector(baseline);

  // Launch ten Type-1 hijacks.
  bgp::UpdateStream stream;
  for (bgp::AsNumber victim = 10; victim < 110; victim += 10) {
    const auto prefix = internet.prefixes()[victim][0];
    const bgp::AsNumber attacker = 299 - victim;
    stream.append(internet.start_hijack(attacker, prefix, 1, 100 + victim));
    internet.clear_prefix_override(prefix, 5000 + victim);
  }
  stream.sort();

  uc::DataSample sample;
  sample.updates = stream;
  const auto cases = detector.scan(sample);
  const auto score = uc::dfoh_score(cases, internet.ground_truth());
  std::printf("candidate new origin-adjacent links: %zu, flagged: %zu\n",
              score.cases, score.flagged);
  std::printf("true positive rate: %.0f%%, false positive rate: %.0f%%\n",
              score.true_positive_rate * 100.0,
              score.false_positive_rate * 100.0);
  std::printf("hijack visibility with this VP deployment: %.0f%%\n",
              uc::hijack_visibility_score(sample, internet.ground_truth()) *
                  100.0);
}

}  // namespace

int main() {
  fig5_walkthrough();
  dfoh_demo();
  return 0;
}
