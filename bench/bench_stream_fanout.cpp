// Live distribution plane fan-out (DESIGN.md §12): one StreamHub pushing
// every published update to 1000 concurrent loopback /v1/stream
// subscribers, plus one deliberately stalled reader. Measures sustained
// fan-out throughput (subscriber-messages/sec) and enforces the two
// correctness claims of the backpressure design even without --strict:
// no subscriber queue ever exceeds the configured high watermark, and the
// stalled reader is evicted while every healthy subscriber receives every
// message. Emits BENCH_stream.json; --strict adds a conservative 20000
// fanout msgs/sec floor (the paper's busiest VP emits ~8 msgs/sec, so a
// full RIS-scale mirror of ~2000 VPs stays >100x under it).
#include <sys/resource.h>
#include <sys/socket.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/event_loop.hpp"
#include "net/http_endpoint.hpp"
#include "net/stream.hpp"

namespace {

using namespace gill;

constexpr std::size_t kSubscribers = 1000;
constexpr std::size_t kConnectBatch = 64;     // stay under the accept backlog
constexpr std::size_t kPublishBatch = 20;
constexpr std::size_t kMessages = 600;        // fan-out phase (measured)
// Backpressure phase: the kernel absorbs up to tcp_wmem[2] (typically 4 MiB)
// per connection before the subscriber queue even starts to fill, so the
// flood cap must comfortably exceed that in bytes.
constexpr std::size_t kMaxFlood = 8000;       // x ~1.4 KiB ≈ 11 MiB cap
constexpr std::size_t kQueueHighBytes = 16 * 1024;
constexpr std::size_t kEvictAfterDrops = 64;
constexpr double kStrictFanoutFloor = 20000.0;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

/// Raises the fd soft limit toward the hard limit: ~2x subscribers + slack
/// fds are needed (client and server end of every connection).
void raise_fd_limit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

/// Incremental HTTP chunked-body parser: counts decoded payload bytes and
/// NDJSON message terminators without buffering the whole stream.
struct ChunkParser {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;

  void feed(const char* data, std::size_t n) {
    pending_.append(data, n);
    if (!in_body_) {
      const std::size_t split = pending_.find("\r\n\r\n");
      if (split == std::string::npos) return;
      pending_.erase(0, split + 4);
      in_body_ = true;
    }
    for (;;) {
      const std::size_t eol = pending_.find("\r\n");
      if (eol == std::string::npos) return;
      const std::size_t size =
          std::strtoul(pending_.substr(0, eol).c_str(), nullptr, 16);
      if (size == 0) return;  // terminating chunk
      if (pending_.size() < eol + 2 + size + 2) return;  // chunk in flight
      for (std::size_t i = eol + 2; i < eol + 2 + size; ++i) {
        if (pending_[i] == '\n') ++messages;
      }
      payload_bytes += size;
      pending_.erase(0, eol + 2 + size + 2);
    }
  }

 private:
  std::string pending_;
  bool in_body_ = false;
};

struct Client {
  int fd = -1;
  ChunkParser parser;
  bool reads = true;  // the stalled reader sets this false

  bool connect_to(std::uint16_t port, const std::string& target, int rcvbuf) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    request_ = "GET " + target + " HTTP/1.1\r\nHost: b\r\n\r\n";
    return rc == 0 || errno == EINPROGRESS;
  }

  void pump() {
    if (sent_ < request_.size()) {
      const ssize_t n = ::send(fd, request_.data() + sent_,
                               request_.size() - sent_, MSG_NOSIGNAL);
      if (n > 0) sent_ += static_cast<std::size_t>(n);
    }
    if (!reads) return;
    char buffer[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      parser.feed(buffer, static_cast<std::size_t>(n));
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

 private:
  std::string request_;
  std::size_t sent_ = 0;
};

bgp::Update make_update(std::size_t sequence) {
  bgp::Update update;
  update.vp = static_cast<bgp::VpId>(sequence % 16);
  update.time = 1000 + static_cast<bgp::Timestamp>(sequence);
  update.prefix =
      net::Prefix::parse("10." + std::to_string(sequence % 200) + ".0.0/16")
          .value();
  update.path = bgp::AsPath({65010, 65020, 64500});
  return update;
}

/// A ~1.4 KiB update (200-hop path) outside 10.0.0.0/8: it reaches only the
/// firehose (stalled) subscriber, so the backpressure phase costs one
/// socket's worth of bytes, not a thousand.
bgp::Update make_flood_update(std::size_t sequence) {
  bgp::Update update;
  update.vp = 1;
  update.time = 2000 + static_cast<bgp::Timestamp>(sequence);
  update.prefix =
      net::Prefix::parse("172.16." + std::to_string(sequence % 200) + ".0/24")
          .value();
  std::vector<bgp::AsNumber> hops(200);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    hops[i] = static_cast<bgp::AsNumber>(65000 + i);
  }
  update.path = bgp::AsPath(std::move(hops));
  return update;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Live distribution plane: /v1/stream fan-out",
                "DESIGN.md §12 — 1000 loopback subscribers + 1 stalled");
  raise_fd_limit();

  net::EventLoop loop;
  metrics::Registry registry;
  net::HttpEndpoint http(loop, &registry);
  net::StreamConfig config;
  config.max_subscribers = kSubscribers + 1;
  config.queue_high_bytes = kQueueHighBytes;
  config.evict_after_drops = kEvictAfterDrops;
  net::StreamHub hub(http, config, &registry);
  if (!http.listen("127.0.0.1", 0)) {
    std::fprintf(stderr, "error: cannot bind a loopback listener\n");
    return 1;
  }

  // Subscribe in batches so the accept backlog never overflows. Healthy
  // subscribers filter on 10.0.0.0/8 — the backpressure flood later stays
  // off their feeds.
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kSubscribers);
  while (clients.size() < kSubscribers) {
    const std::size_t target =
        std::min(clients.size() + kConnectBatch, kSubscribers);
    while (clients.size() < target) {
      auto client = std::make_unique<Client>();
      if (!client->connect_to(http.port(), "/v1/stream?prefix=10.0.0.0/8",
                              0)) {
        std::fprintf(stderr, "error: connect failed at subscriber %zu\n",
                     clients.size());
        return 1;
      }
      clients.push_back(std::move(client));
    }
    for (int i = 0; i < 5000 && hub.subscriber_count() < clients.size(); ++i) {
      loop.run_once(1);
      for (auto& client : clients) client->pump();
    }
    if (hub.subscriber_count() < clients.size()) {
      std::fprintf(stderr, "error: only %zu of %zu subscriptions came up\n",
                   hub.subscriber_count(), clients.size());
      return 1;
    }
  }
  // The stalled reader takes the firehose through a tiny receive window and
  // never reads a byte past its request — the kernel buffers fill, then its
  // queue, then it is trimmed and finally evicted.
  auto stalled = std::make_unique<Client>();
  if (!stalled->connect_to(http.port(), "/v1/stream", /*rcvbuf=*/1024)) {
    std::fprintf(stderr, "error: stalled subscriber cannot connect\n");
    return 1;
  }
  for (int i = 0; i < 5000 && hub.subscriber_count() < kSubscribers + 1; ++i) {
    loop.run_once(1);
    stalled->pump();
    for (auto& client : clients) client->pump();
  }
  stalled->reads = false;
  if (hub.subscriber_count() != kSubscribers + 1) {
    std::fprintf(stderr, "error: %zu subscribers up, want %zu\n",
                 hub.subscriber_count(), kSubscribers + 1);
    return 1;
  }
  bench::note("all " + std::to_string(kSubscribers + 1) +
              " subscriptions established");

  // Phase 1 (measured): fan every update out to all 1001 subscribers,
  // draining the healthy readers between batches.
  const bench::Stopwatch watch;
  std::size_t published = 0;
  while (published < kMessages) {
    for (std::size_t i = 0; i < kPublishBatch; ++i) {
      hub.publish(make_update(published++));
    }
    loop.run_once(0);
    for (auto& client : clients) client->pump();
  }
  // Drain the tail: every healthy subscriber catches up to `published`.
  bool complete = false;
  for (int i = 0; i < 20000 && !complete; ++i) {
    loop.run_once(1);
    complete = true;
    for (auto& client : clients) {
      client->pump();
      complete = complete && client->parser.messages >= published;
    }
  }
  const double seconds = watch.seconds();
  const std::uint64_t fanout =
      registry.counter_total("gill_stream_fanout_msgs_total");

  // Phase 2: big updates outside 10.0.0.0/8 reach only the stalled
  // firehose; its kernel buffers fill (up to tcp_wmem max), its queue tops
  // out at the watermark, and kEvictAfterDrops trims later it is gone.
  std::size_t flooded = 0;
  while (flooded < kMaxFlood &&
         registry.counter_total("gill_stream_evictions_total") == 0) {
    hub.publish(make_flood_update(flooded++));
    if (flooded % 64 == 0) loop.run_once(0);
  }
  bench::note("stalled reader evicted after " + std::to_string(flooded) +
              " flood messages");

  // The healthy fleet is untouched: one more matching update still lands
  // on every subscriber.
  hub.publish(make_update(published++));
  complete = false;
  for (int i = 0; i < 20000 && !complete; ++i) {
    loop.run_once(1);
    complete = true;
    for (auto& client : clients) {
      client->pump();
      complete = complete && client->parser.messages >= published;
    }
  }

  const std::uint64_t dropped =
      registry.counter_total("gill_stream_dropped_msgs_total");
  const std::uint64_t evictions =
      registry.counter_total("gill_stream_evictions_total");
  std::uint64_t delivered_bytes = 0;
  std::uint64_t incomplete = 0;
  for (const auto& client : clients) {
    delivered_bytes += client->parser.payload_bytes;
    if (client->parser.messages < published) ++incomplete;
  }
  const double fanout_per_sec = static_cast<double>(fanout) / seconds;

  bench::row({"metric", "value"}, 28);
  bench::row({"subscribers", bench::num(kSubscribers, 0)}, 28);
  bench::row({"messages_published", bench::num(published, 0)}, 28);
  bench::row({"flood_messages", bench::num(static_cast<double>(flooded), 0)},
             28);
  bench::row({"fanout_msgs", bench::num(static_cast<double>(fanout), 0)}, 28);
  bench::row({"dropped_msgs", bench::num(static_cast<double>(dropped), 0)},
             28);
  bench::row({"evictions", bench::num(static_cast<double>(evictions), 0)}, 28);
  bench::row({"max_queue_bytes",
              bench::num(static_cast<double>(hub.max_subscriber_queue_bytes()),
                         0)},
             28);
  bench::row({"elapsed_s", bench::num(seconds, 3)}, 28);
  bench::row({"fanout_msgs_per_sec", bench::num(fanout_per_sec, 0)}, 28);

  std::string json = "{\"bench\":\"stream_fanout\",";
  json += "\"subscribers\":" + std::to_string(kSubscribers) + ",";
  json += "\"messages_published\":" + std::to_string(published) + ",";
  json += "\"flood_messages\":" + std::to_string(flooded) + ",";
  json += "\"fanout_msgs\":" + std::to_string(fanout) + ",";
  json += "\"dropped_msgs\":" + std::to_string(dropped) + ",";
  json += "\"evictions\":" + std::to_string(evictions) + ",";
  json += "\"incomplete_subscribers\":" + std::to_string(incomplete) + ",";
  json += "\"queue_high_bytes\":" + std::to_string(kQueueHighBytes) + ",";
  json += "\"max_subscriber_queue_bytes\":" +
          std::to_string(hub.max_subscriber_queue_bytes()) + ",";
  json += "\"delivered_bytes\":" + std::to_string(delivered_bytes) + ",";
  json += "\"elapsed_s\":" + json_number(seconds) + ",";
  json += "\"fanout_msgs_per_sec\":" + json_number(fanout_per_sec) + ",";
  json += "\"strict_fanout_floor\":" + json_number(kStrictFanoutFloor) + "}\n";
  std::FILE* out = std::fopen("BENCH_stream.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_stream.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_stream.json\n");
    return 1;
  }

  // Correctness claims hold even without --strict.
  if (hub.max_subscriber_queue_bytes() > kQueueHighBytes) {
    std::fprintf(stderr, "FAIL: a queue reached %zu bytes (watermark %zu)\n",
                 hub.max_subscriber_queue_bytes(), kQueueHighBytes);
    return 1;
  }
  if (evictions != 1) {
    std::fprintf(stderr,
                 "FAIL: %llu evictions after %zu messages (want exactly the "
                 "stalled reader)\n",
                 static_cast<unsigned long long>(evictions), published);
    return 1;
  }
  if (incomplete != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu healthy subscribers missed messages "
                 "(eviction disturbed the fan-out)\n",
                 static_cast<unsigned long long>(incomplete));
    return 1;
  }
  if (strict && fanout_per_sec < kStrictFanoutFloor) {
    std::fprintf(stderr, "FAIL: %.0f fanout msgs/sec is below the %.0f floor\n",
                 fanout_per_sec, kStrictFanoutFloor);
    return 1;
  }
  return 0;
}
