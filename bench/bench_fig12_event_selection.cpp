// Fig. 12: event-selection matrices over the five Table 5 AS categories —
// GILL's balanced stratification vs. plain random selection. Random
// selection oversamples whatever the event mix is biased toward; balanced
// selection equalizes the 15 unordered category pairs.
#include "anchor/event_selection.hpp"
#include "bench_util.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace {

void print_matrix(const gill::anchor::SelectionMatrix& matrix) {
  using namespace gill;
  const char* names[] = {"Stub", "Transit-1", "Transit-2", "Hypergiant",
                         "Tier-one"};
  std::printf("%-12s", "");
  for (const char* name : names) std::printf("%-12s", name);
  std::printf("\n");
  for (std::size_t a = 0; a < topo::kCategoryCount; ++a) {
    std::printf("%-12s", names[a]);
    for (std::size_t b = 0; b < topo::kCategoryCount; ++b) {
      std::printf("%-12s", bench::num(matrix[a][b], 3).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace gill;
  bench::header("Fig. 12 — Balanced vs random event selection",
                "Fig. 12 and §18.1: share of selected events per AS-category "
                "pair");
  bench::Stopwatch watch;

  const auto topology =
      topo::generate_artificial({.as_count = 800, .seed = 13});
  const auto categories = topo::classify_ases(topology);

  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 800; as += 6) config.vp_hosts.push_back(as);
  config.rng_seed = 14;
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 15;
  workload.duration = 4 * 3600;
  workload.link_failures_per_hour = 60;
  workload.origin_changes_per_hour = 20;
  sim::generate_workload(internet, 0, workload);

  anchor::EventSelectionConfig selection;
  selection.per_type_quota = 150;
  const auto candidates = anchor::candidate_events(
      internet.ground_truth(), config.vp_hosts.size(), selection);
  bench::note(std::to_string(candidates.size()) + " candidate events after "
              "the non-global visibility filter");

  const auto balanced =
      anchor::select_events(candidates, categories, selection);
  std::printf("\n(a) Balanced selection (%zu events):\n", balanced.size());
  print_matrix(anchor::selection_matrix(balanced, categories));

  selection.balanced = false;
  const auto random = anchor::select_events(candidates, categories, selection);
  std::printf("\n(b) Random selection (%zu events):\n", random.size());
  print_matrix(anchor::selection_matrix(random, categories));

  std::printf("\npaper: random selection concentrates on Transit-2 pairs "
              "(up to 0.26) while balanced keeps every pair near 0.07\n");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
