// Metrics overhead microbench: the cost of the decode-hot-path counter
// increment versus a bare relaxed atomic add, plus the (cold-path) cost of
// re-resolving a labeled child through the registry on every event and of
// a histogram observation. Emits BENCH_metrics.json.
//
// The contract this guards (DESIGN.md §6): Counter::inc() is exactly one
// relaxed fetch_add, so a pre-resolved handle must stay within 2x of the
// bare atomic — and per-event registry lookups are the anti-pattern the
// numbers below exist to discourage.
//
// Exits 0 regardless of the measured ratio so a loaded CI box cannot turn
// timing noise into a test failure; pass --strict to enforce the 2x bound.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace gill;

constexpr std::uint64_t kHotIterations = 1u << 24;   // ~16.8M
constexpr std::uint64_t kColdIterations = 1u << 19;  // lookups are ~100x slower
constexpr int kRepetitions = 5;
constexpr double kStrictRatioLimit = 2.0;

/// Runs `body(iterations)` kRepetitions times and returns the best
/// (least-disturbed) nanoseconds per operation.
template <typename Body>
double best_ns_per_op(std::uint64_t iterations, Body body) {
  double best = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const bench::Stopwatch watch;
    body(iterations);
    best = std::min(best,
                    watch.seconds() * 1e9 / static_cast<double>(iterations));
  }
  return best;
}

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Metrics overhead: counter increment vs bare atomic",
                "instrumentation budget for the §5 daemon decode path");

  // 1. The floor: a bare relaxed atomic add.
  std::atomic<std::uint64_t> bare{0};
  const double bare_ns = best_ns_per_op(kHotIterations, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      bare.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // 2. The hot path: a Counter handle resolved once at session setup.
  metrics::Registry registry;
  metrics::Counter& counter =
      registry.counter("gill_bench_events_total", "Bench events", {{"vp", "1"}});
  const double counter_ns =
      best_ns_per_op(kHotIterations, [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) counter.inc();
      });

  // 3. The anti-pattern: re-resolving the labeled child per event
  //    (mutex + label canonicalization + map lookup).
  const double lookup_ns =
      best_ns_per_op(kColdIterations, [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
          registry
              .counter("gill_bench_events_total", "Bench events",
                       {{"vp", "1"}})
              .inc();
        }
      });

  // 4. Histogram::observe (bucket index + three relaxed adds).
  metrics::Histogram& histogram =
      registry.histogram("gill_bench_bytes", "Bench sizes");
  const double histogram_ns =
      best_ns_per_op(kHotIterations, [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) histogram.observe(i & 0xFFFF);
      });

  const double ratio = counter_ns / bare_ns;
  bench::row({"case", "ns/op"}, 28);
  bench::row({"bare_atomic_fetch_add", bench::num(bare_ns, 3)}, 28);
  bench::row({"counter_inc", bench::num(counter_ns, 3)}, 28);
  bench::row({"labeled_lookup_inc", bench::num(lookup_ns, 3)}, 28);
  bench::row({"histogram_observe", bench::num(histogram_ns, 3)}, 28);
  std::printf("counter_inc / bare ratio: %.2fx (budget %.1fx)\n", ratio,
              kStrictRatioLimit);
  std::printf("checksum: %llu %llu %llu\n",
              static_cast<unsigned long long>(bare.load()),
              static_cast<unsigned long long>(counter.value()),
              static_cast<unsigned long long>(histogram.count()));

  std::string json = "{\"bench\":\"metrics_overhead\",\"results\":[";
  json += "{\"name\":\"bare_atomic_fetch_add\",\"ns_per_op\":" +
          json_number(bare_ns) + "},";
  json += "{\"name\":\"counter_inc\",\"ns_per_op\":" +
          json_number(counter_ns) + "},";
  json += "{\"name\":\"labeled_lookup_inc\",\"ns_per_op\":" +
          json_number(lookup_ns) + "},";
  json += "{\"name\":\"histogram_observe\",\"ns_per_op\":" +
          json_number(histogram_ns) + "}],";
  json += "\"counter_vs_bare_ratio\":" + json_number(ratio) + ",";
  json += "\"strict_ratio_limit\":" + json_number(kStrictRatioLimit) + "}\n";
  std::FILE* out = std::fopen("BENCH_metrics.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_metrics.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_metrics.json\n");
    return 1;
  }

  if (strict && ratio > kStrictRatioLimit) {
    std::fprintf(stderr, "FAIL: counter_inc is %.2fx bare atomic (> %.1fx)\n",
                 ratio, kStrictRatioLimit);
    return 1;
  }
  return 0;
}
