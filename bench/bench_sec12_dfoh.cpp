// §12(c): forged-origin hijack inference (DFOH replication). Three
// configurations, as in the paper: DFOH_ALL uses all collected routes (the
// paper's ground-truth approximation — here we additionally have the real
// simulator ground truth), DFOH_GILL uses GILL-sampled routes and DFOH_R a
// random-VP sample of identical size. The paper reports TPR 94% vs 71.5%
// and FPR 14.4% vs 60.1% (~4x better precision for GILL).
#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/hijack.hpp"

int main() {
  using namespace gill;
  bench::header("§12(c) — DFOH forged-origin hijack inference",
                "DFOH_GILL vs DFOH_R vs DFOH_ALL (paper: TPR 94% vs 71.5%, "
                "FPR 14.4% vs 60.1%)");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 91});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 400; as += 4) {
    config.vp_hosts.push_back(as);
    if (as < 80) config.vp_hosts.push_back(as);
  }
  {
    std::mt19937_64 prefix_rng(92);
    config.prefixes = net::PrefixAllocator::assign(500, prefix_rng, 4);
  }
  config.rng_seed = 93;
  sim::Internet internet(topology, config);
  const auto ribs = internet.rib_dump(0);
  const auto origins = uc::OriginTable::from_rib(ribs);

  sim::WorkloadConfig training_workload;
  training_workload.seed = 94;
  training_workload.duration = 4 * 3600;
  training_workload.hotspot_fraction = 0.25;
  training_workload.hijacks_per_hour = 0;  // clean baseline view
  const auto training = sim::generate_workload(internet, 10, training_workload);
  internet.ground_truth().clear();

  // Evaluation: recurrent background churn (which GILL discards) with a
  // hijack campaign striking anywhere in the topology.
  bgp::UpdateStream eval;
  {
    sim::WorkloadConfig background;
    background.seed = 95;
    background.duration = 3 * 3600;
    background.hijacks_per_hour = 0;
    background.hotspot_fraction = 0.25;
    eval.append(sim::generate_workload(internet, 5 * 3600, background));
    sim::WorkloadConfig attacks;
    attacks.seed = 96;
    attacks.duration = 2 * 3600;
    attacks.link_failures_per_hour = 0;
    attacks.moas_per_hour = 0;
    attacks.origin_changes_per_hour = 18;  // legit new origin adjacencies
    attacks.community_changes_per_hour = 0;
    attacks.hijacks_per_hour = 36;
    attacks.hotspot_fraction = 1.0;  // attacks strike anywhere
    eval.append(sim::generate_workload(internet, 9 * 3600, attacks));
    sim::WorkloadConfig background2 = background;
    background2.seed = 97;
    eval.append(sim::generate_workload(internet, 12 * 3600, background2));
    eval.sort();
  }
  const auto truths = internet.ground_truth();
  std::size_t hijack_count = 0;
  for (const auto& truth : truths) {
    if (truth.kind == sim::GroundTruth::Kind::kHijack) ++hijack_count;
  }
  std::printf("evaluation: %zu updates, %zu forged-origin hijacks\n\n",
              eval.size(), hijack_count);

  sample::SamplingContext ctx;
  ctx.all_updates = &eval;
  ctx.all_ribs = &ribs;
  ctx.training = &training;
  ctx.training_ribs = &ribs;
  ctx.topology = &topology;
  ctx.vp_hosts = &config.vp_hosts;
  ctx.truths = &truths;
  ctx.origins = &origins;
  ctx.seed = 96;

  // The baseline topological view all DFOH variants share (history).
  uc::DataSample history;
  history.ribs = ribs;
  history.updates = training;
  bgp::UpdateStream baseline_stream = ribs;
  baseline_stream.append(training);
  const auto baseline = uc::BaselineView::from_stream(baseline_stream);
  const uc::DfohDetector detector(baseline);

  sample::GillSampler gill;
  const auto gill_sample = gill.sample(ctx, 0);
  const std::size_t budget = gill_sample.updates.size();
  sample::RandomVpSampler random_vp;
  const auto random_sample = random_vp.sample(ctx, budget);
  uc::DataSample all;
  all.updates = eval;
  all.ribs = ribs;

  bench::row({"variant", "cases", "flagged", "TPR", "FPR", "visib."}, 12);
  struct Variant {
    const char* name;
    const uc::DataSample* sample;
  };
  const Variant variants[] = {{"DFOH_ALL", &all},
                              {"DFOH_GILL", &gill_sample},
                              {"DFOH_R", &random_sample}};
  for (const auto& variant : variants) {
    const auto cases = detector.scan(*variant.sample);
    const auto score = uc::dfoh_score(cases, truths);
    const double visibility =
        uc::hijack_visibility_score(*variant.sample, truths, 0);
    bench::row({variant.name, std::to_string(score.cases),
                std::to_string(score.flagged),
                bench::pct(score.true_positive_rate),
                bench::pct(score.false_positive_rate),
                bench::pct(visibility)},
               12);
  }
  std::printf("\n(budget for DFOH_GILL and DFOH_R: %zu updates; paper keeps "
              "the 287-VP volume of the original DFOH deployment)\n", budget);
  bench::note("expected: DFOH_GILL approaches DFOH_ALL's TPR and keeps the "
              "FPR low, while DFOH_R misses hijacks (lower TPR / hijack "
              "visibility) at the same data volume");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
