// Fig. 8: redundancy-score stability over time — compare Component #2's
// pairwise VP redundancy scores computed on the current world against the
// scores from a world m months older. Low differences for m <= 12 justify
// the yearly Component #2 refresh (§7).
#include <random>

#include "anchor/event_selection.hpp"
#include "anchor/scoring.hpp"
#include "bench_util.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace {

using namespace gill;

std::vector<std::vector<double>> compute_scores(sim::Internet& internet,
                                                std::size_t vp_count,
                                                const topo::AsTopology& topology,
                                                bgp::Timestamp start,
                                                std::uint64_t seed) {
  const auto rib = internet.rib_dump(start);
  internet.ground_truth().clear();
  sim::WorkloadConfig workload;
  workload.seed = seed;
  workload.duration = 2 * 3600;
  workload.link_failures_per_hour = 40;
  const auto stream = sim::generate_workload(internet, start + 10, workload);

  anchor::EventSelectionConfig selection;
  selection.per_type_quota = 25;
  selection.seed = seed;
  const auto candidates =
      anchor::candidate_events(internet.ground_truth(), vp_count, selection);
  const auto events = anchor::select_events(
      candidates, topo::classify_ases(topology), selection);

  std::vector<bgp::VpId> vps;
  for (bgp::VpId vp = 0; vp < vp_count; ++vp) vps.push_back(vp);
  anchor::EventFeatureExtractor extractor(vps);
  return anchor::redundancy_scores(extractor.extract(rib, stream, events));
}

/// One month of drift: a handful of permanent origin moves and link churn.
void drift_one_month(sim::Internet& internet, std::mt19937_64& rng,
                     bgp::Timestamp now) {
  const auto& topology = internet.topology();
  std::uniform_int_distribution<bgp::AsNumber> any_as(
      0, topology.as_count() - 1);
  std::uniform_int_distribution<std::size_t> any_link(
      0, topology.links().size() - 1);
  for (int i = 0; i < 5; ++i) {
    const bgp::AsNumber victim = any_as(rng);
    if (!internet.prefixes()[victim].empty()) {
      internet.change_origin(any_as(rng), internet.prefixes()[victim][0],
                             now + i);
    }
  }
  for (int i = 0; i < 3; ++i) {
    const topo::Link link = topology.links()[any_link(rng)];
    internet.fail_link(link.a, link.b, now + 100 + i);
  }
}

}  // namespace

int main() {
  bench::header("Fig. 8 — Redundancy score differences between two runs",
                "Fig. 8 and §7: distribution of |score(now) - score(m months "
                "ago)| over VP pairs; low for m <= 12 => yearly refresh");
  bench::note("250-AS world, 50 VPs, 75 probing events per run (matched "
              "event seeds: only world drift differs between runs)");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 250, .seed = 23});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 250; as += 5) config.vp_hosts.push_back(as);
  config.rng_seed = 24;
  sim::Internet internet(topology, config);
  const std::size_t vp_count = config.vp_hosts.size();

  const auto base =
      compute_scores(internet, vp_count, topology, 0, 25);

  bench::row({"months m", "median |diff|", "p90 |diff|"}, 16);
  std::mt19937_64 drift_rng(26);
  int previous = 0;
  bgp::Timestamp clock = 10 * 3600;
  for (const int months : {6, 12, 24, 36, 48, 66}) {
    for (int m = previous; m < months; ++m) {
      drift_one_month(internet, drift_rng, clock);
      clock += 3600;
    }
    previous = months;
    const auto scores =
        compute_scores(internet, vp_count, topology, clock, 25);
    clock += 4 * 3600;

    std::vector<double> diffs;
    for (std::size_t i = 0; i < base.size() && i < scores.size(); ++i) {
      for (std::size_t j = i + 1; j < base.size() && j < scores.size(); ++j) {
        diffs.push_back(std::abs(base[i][j] - scores[i][j]));
      }
    }
    std::sort(diffs.begin(), diffs.end());
    if (diffs.empty()) continue;
    bench::row({std::to_string(months),
                bench::num(diffs[diffs.size() / 2], 3),
                bench::num(diffs[diffs.size() * 9 / 10], 3)},
               16);
  }
  bench::note("paper: median difference below 0.1 for m <= 12, growing "
              "with m");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
