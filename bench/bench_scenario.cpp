// Closed-loop scenario harness acceptance (DESIGN.md §13): build the
// route-leak and sub-prefix-hijack scenarios, replay each through the
// embedded deterministic collector with link shaping, and record the
// numbers the harness exists to produce — events/s through the pipeline,
// per-event detection latency, delivery completeness. Emits
// BENCH_scenario.json. The detection claims (every ground-truth anomaly
// detected in stream AND archive, tagged) are correctness claims enforced
// even without --strict; --strict adds a conservative wall-clock ingest
// floor (2000 updates/sec, far under the ~100k/sec the in-memory loop
// does) so a loaded CI box cannot flake on it.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/driver.hpp"
#include "harness/scenario.hpp"

namespace {

constexpr double kStrictIngestFloor = 2000.0;  // updates/sec, wall clock

struct RunResult {
  std::string name;
  gill::harness::ScenarioVerdict verdict;
  double wall_seconds = 0.0;
  double wall_updates_per_sec = 0.0;
  double mean_detection_latency_ms = 0.0;
};

RunResult run_scenario(gill::harness::ScenarioKind kind) {
  using namespace gill::harness;
  ScenarioConfig config;
  config.kind = kind;
  config.as_count = 48;
  config.vp_count = 6;
  config.seed = 2;
  config.link.latency_ms = 10.0;
  config.link.jitter_ms = 4.0;
  config.link.loss_rate = 0.01;
  Scenario scenario = build_scenario(config);

  DriverConfig driver_config;
  driver_config.replay_ms = 1500.0;
  ScenarioDriver driver(scenario, driver_config);

  RunResult result;
  result.name = scenario.name;
  const gill::bench::Stopwatch watch;
  result.verdict = driver.run_in_memory();
  result.wall_seconds = watch.seconds();
  result.wall_updates_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.verdict.updates_sent) /
                result.wall_seconds
          : 0.0;
  double latency_sum = 0.0;
  std::size_t detected = 0;
  for (const auto& event : result.verdict.events) {
    if (event.detection_latency_ms >= 0) {
      latency_sum += event.detection_latency_ms;
      ++detected;
    }
  }
  result.mean_detection_latency_ms =
      detected ? latency_sum / static_cast<double>(detected) : -1.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gill;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }

  bench::header(
      "Closed-loop scenario harness: shaped replay vs ground truth",
      "GILL platform validation (SIGCOMM'24), DESIGN.md §13");
  bench::note(
      "embedded deterministic collector, per-VP shaping 10ms +/- 4ms, 1% "
      "update loss");

  const std::vector<RunResult> results = {
      run_scenario(harness::ScenarioKind::kRouteLeak),
      run_scenario(harness::ScenarioKind::kSubprefixHijack),
  };

  bench::row({"scenario", "sent", "archived", "complete", "events/s",
              "detect ms", "ingest/s"},
             13);
  bool all_detected = true;
  for (const RunResult& result : results) {
    const auto& verdict = result.verdict;
    for (const auto& event : verdict.events) {
      all_detected = all_detected && event.detected_stream &&
                     event.detected_archive && event.tagged;
    }
    all_detected = all_detected && verdict.passed;
    bench::row({result.name, std::to_string(verdict.updates_sent),
                std::to_string(verdict.updates_delivered),
                bench::pct(verdict.delivery_completeness),
                bench::num(verdict.events_per_sec),
                bench::num(result.mean_detection_latency_ms),
                bench::num(result.wall_updates_per_sec, 0)},
               13);
  }

  std::string json = "{\"scenarios\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& result = results[i];
    if (i) json.push_back(',');
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"name\":\"%s\",\"updates_sent\":%zu,"
                  "\"updates_delivered\":%zu,"
                  "\"delivery_completeness\":%.4f,"
                  "\"events_per_sec\":%.1f,"
                  "\"mean_detection_latency_ms\":%.2f,"
                  "\"wall_updates_per_sec\":%.0f,\"passed\":%s}",
                  result.name.c_str(), result.verdict.updates_sent,
                  result.verdict.updates_delivered,
                  result.verdict.delivery_completeness,
                  result.verdict.events_per_sec,
                  result.mean_detection_latency_ms,
                  result.wall_updates_per_sec,
                  result.verdict.passed ? "true" : "false");
    json += buffer;
  }
  json += "],\"strict_ingest_floor\":" +
          std::to_string(kStrictIngestFloor) + "}\n";
  std::FILE* out = std::fopen("BENCH_scenario.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_scenario.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_scenario.json\n");
    return 1;
  }

  // Correctness claims hold even without --strict: every ground-truth
  // anomaly must be detected, in the stream and in the archive, tagged.
  if (!all_detected) {
    std::fprintf(stderr, "FAIL: a ground-truth anomaly went undetected\n");
    return 1;
  }
  if (strict) {
    for (const RunResult& result : results) {
      if (result.wall_updates_per_sec < kStrictIngestFloor) {
        std::fprintf(stderr, "FAIL: %s ingest %.0f/s under the %.0f floor\n",
                     result.name.c_str(), result.wall_updates_per_sec,
                     kStrictIngestFloor);
        return 1;
      }
    }
  }
  bench::note(strict ? "strict floors enforced: PASS" : "informational run");
  return 0;
}
