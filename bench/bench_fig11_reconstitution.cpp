// Fig. 11: reconstitution power as a function of |α|/|β| — the trade-off
// that motivates the 0.94 stop threshold of Component #1 (§17.2). Also
// reports the incorrect-reconstitution rate (§17.2: 4.6% on RIS/RV data)
// and the compound |U|/|V| after each pipeline step (§6: ~0.16 then ~0.07).
#include <map>

#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "redundancy/component1.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main() {
  using namespace gill;
  bench::header("Fig. 11 — Reconstitution power vs |α|/|β|",
                "Fig. 11 and §17.2 of the paper");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 9});
  sim::InternetConfig config;
  // 100 VPs over 85 distinct ASes (co-located VPs, as on the real
  // platforms) and heavy-tailed per-AS prefix counts so that cross-prefix
  // redundancy (step 3) exists.
  for (bgp::AsNumber as = 0; as < 340; as += 4) {
    config.vp_hosts.push_back(as);
    if (as < 60) config.vp_hosts.push_back(as);
  }
  {
    std::mt19937_64 prefix_rng(10);
    config.prefixes = net::PrefixAllocator::assign(400, prefix_rng, 8);
  }
  config.rng_seed = 11;
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 12;
  workload.duration = 2 * 3600;  // richer correlation structure
  workload.hotspot_fraction = 0.3;  // recurrent events, as in real feeds
  const auto stream = sim::generate_workload(internet, 0, workload);
  bench::note("stream: " + std::to_string(stream.size()) + " updates over " +
              std::to_string(stream.vps().size()) + " VPs, " +
              std::to_string(stream.prefixes().size()) + " prefixes");

  // Per-prefix greedy curves, evaluated on a common |α|/|β| grid (step
  // functions averaged across prefixes).
  std::map<net::Prefix, std::vector<bgp::Update>> by_prefix;
  for (const auto& update : stream) by_prefix[update.prefix].push_back(update);

  constexpr int kGrid = 20;
  std::vector<double> rp_sum(kGrid + 1, 0.0);
  std::size_t prefixes_used = 0;
  double incorrect_sum = 0.0;

  for (const auto& [prefix, updates] : by_prefix) {
    if (updates.size() < 8) continue;  // need structure to be meaningful
    red::PrefixReconstitution reconstitution(updates);
    const auto greedy = reconstitution.greedy_select(1.01);  // full curve
    for (int g = 0; g <= kGrid; ++g) {
      const double x = static_cast<double>(g) / kGrid;
      double rp = 0.0;  // RP achievable with a retained fraction <= x
      for (std::size_t i = 0; i < greedy.rp_curve.size(); ++i) {
        if (greedy.retained_fraction_curve[i] <= x + 1e-9) {
          rp = greedy.rp_curve[i];
        }
      }
      rp_sum[g] += rp;
    }
    incorrect_sum += reconstitution.incorrect_reconstitution_fraction(
        greedy.selected_vps);
    ++prefixes_used;
  }

  bench::row({"|a|/|b|", "reconstitution power"}, 14);
  for (int g = 0; g <= kGrid; ++g) {
    bench::row({bench::num(static_cast<double>(g) / kGrid, 2),
                bench::num(rp_sum[g] / std::max<std::size_t>(prefixes_used, 1),
                           3)},
               14);
  }
  std::printf("\nincorrect reconstitution rate: %s (paper: 4.6%%)\n",
              bench::pct(incorrect_sum /
                         std::max<std::size_t>(prefixes_used, 1))
                  .c_str());

  // Compound pipeline fractions (§6).
  red::Component1Config step2_only;
  step2_only.cross_prefix = false;
  const auto step2 = red::find_redundant_updates(stream, step2_only);
  const auto step3 = red::find_redundant_updates(stream, {});
  std::printf("|U|/|V| after step 2 (per-prefix): %s   (paper: ~0.16)\n",
              bench::num(step2.retained_fraction(), 3).c_str());
  std::printf("|U|/|V| after step 3 (cross-prefix): %s (paper: ~0.07)\n",
              bench::num(step3.retained_fraction(), 3).c_str());
  std::printf("mean final RP: %s (stop threshold 0.94)\n",
              bench::num(step3.mean_rp, 3).c_str());
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
