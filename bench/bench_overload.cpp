// Overload-control acceptance bench (DESIGN.md §11): a 10x ingest spike
// fired at a stalled collector session. The inbound queue must be bounded
// by the configured high watermark (plus at most one 16 KiB read chunk) —
// backpressure sheds load in *time*, never in data: once the session layer
// resumes, every update of the spike is delivered. Emits
// BENCH_overload.json; the watermark bound is enforced even without
// --strict (it is the correctness claim, not a speed floor).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "daemon/daemon.hpp"
#include "net/event_loop.hpp"
#include "net/overload.hpp"
#include "net/tcp_transport.hpp"

namespace {

using namespace gill;

constexpr std::size_t kHighWatermark = 64 * 1024;
constexpr std::size_t kReadChunk = 16384;  // TcpTransport's read size
constexpr std::uint64_t kBaselineUpdates = 4000;
constexpr std::uint64_t kSpikeUpdates = 10 * kBaselineUpdates;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  (void)strict;  // the memory bound below is always enforced
  bench::header("Overload control: 10x ingest spike vs queue watermark",
                "§11 watermark backpressure on a stalled session");

  net::EventLoop loop;
  metrics::Registry registry;
  std::unique_ptr<net::TcpTransport> server;
  std::unique_ptr<daemon::BgpDaemon> bgp_daemon;
  net::TcpListener listener(loop, &registry);
  if (!listener.listen("127.0.0.1", 0,
                       [&](int fd, std::string, std::uint16_t) {
                         server = std::make_unique<net::TcpTransport>(
                             loop, net::Role::kDaemonSide, &registry);
                         net::IngestLimits limits;
                         limits.queue_high_watermark = kHighWatermark;
                         server->set_ingest_limits(limits);
                         server->adopt(fd);
                         bgp_daemon = std::make_unique<daemon::BgpDaemon>(
                             1, 65000, *server, nullptr, nullptr, &registry);
                         bgp_daemon->start(1);
                       })) {
    std::fprintf(stderr, "error: cannot bind a loopback listener\n");
    return 1;
  }
  net::TcpTransport client(loop, net::Role::kPeerSide, &registry);
  if (!client.dial("127.0.0.1", listener.port())) {
    std::fprintf(stderr, "error: cannot dial the loopback listener\n");
    return 1;
  }
  daemon::FakePeer peer(65010, client);

  const auto pump = [&](bool daemon_alive) {
    loop.run_once(1);
    if (daemon_alive && bgp_daemon) bgp_daemon->poll(1);
    peer.poll();
    client.sync();
    if (server) server->sync();
  };

  for (int i = 0; i < 5000; ++i) {
    if (bgp_daemon &&
        bgp_daemon->state() == daemon::SessionState::kEstablished &&
        peer.established()) {
      break;
    }
    pump(true);
  }
  if (!bgp_daemon ||
      bgp_daemon->state() != daemon::SessionState::kEstablished) {
    std::fprintf(stderr, "error: session never established over loopback\n");
    return 1;
  }

  // The spike: 10x a normal burst, fired while the session layer is
  // stalled (the daemon never polls) — the worst case for queue growth.
  const bench::Stopwatch watch;
  peer.send_synthetic_burst(kSpikeUpdates, 10u << 24);
  std::size_t max_queue = 0;
  for (int i = 0; i < 3000; ++i) {
    pump(false);
    max_queue = std::max(max_queue, server->inbound_queue_bytes());
  }
  const std::uint64_t pauses =
      registry.counter_total("gill_overload_read_pauses_total");

  // Service resumes: drain the whole spike through the daemon.
  std::uint64_t guard = 0;
  while (bgp_daemon->stats().updates_received < kSpikeUpdates &&
         ++guard < 3000000) {
    pump(true);
    max_queue = std::max(max_queue, server->inbound_queue_bytes());
  }
  const double seconds = watch.seconds();
  const std::uint64_t received = bgp_daemon->stats().updates_received;
  const double msgs_per_sec = static_cast<double>(received) / seconds;

  bench::row({"metric", "value"}, 28);
  bench::row({"spike_updates", bench::num(static_cast<double>(kSpikeUpdates),
                                          0)},
             28);
  bench::row({"updates_delivered",
              bench::num(static_cast<double>(received), 0)},
             28);
  bench::row({"queue_high_watermark",
              bench::num(static_cast<double>(kHighWatermark), 0)},
             28);
  bench::row({"max_queue_bytes",
              bench::num(static_cast<double>(max_queue), 0)},
             28);
  bench::row({"read_pauses", bench::num(static_cast<double>(pauses), 0)}, 28);
  bench::row({"elapsed_s", bench::num(seconds, 3)}, 28);
  bench::row({"msgs_per_sec", bench::num(msgs_per_sec, 0)}, 28);

  std::string json = "{\"bench\":\"overload\",";
  json += "\"spike_updates\":" + std::to_string(kSpikeUpdates) + ",";
  json += "\"updates_delivered\":" + std::to_string(received) + ",";
  json += "\"queue_high_watermark\":" + std::to_string(kHighWatermark) + ",";
  json += "\"max_queue_bytes\":" + std::to_string(max_queue) + ",";
  json += "\"queue_bound_bytes\":" +
          std::to_string(kHighWatermark + kReadChunk) + ",";
  json += "\"read_pauses\":" + std::to_string(pauses) + ",";
  json += "\"elapsed_s\":" + json_number(seconds) + ",";
  json += "\"msgs_per_sec\":" + json_number(msgs_per_sec) + "}\n";
  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_overload.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_overload.json\n");
    return 1;
  }

  if (max_queue > kHighWatermark + kReadChunk) {
    std::fprintf(stderr,
                 "FAIL: queue peaked at %zu bytes, above the %zu bound\n",
                 max_queue, kHighWatermark + kReadChunk);
    return 1;
  }
  if (pauses == 0) {
    std::fprintf(stderr, "FAIL: the spike never tripped a read pause\n");
    return 1;
  }
  if (received < kSpikeUpdates) {
    std::fprintf(stderr, "FAIL: only %llu of %llu updates arrived\n",
                 static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(kSpikeUpdates));
    return 1;
  }
  return 0;
}
