// Fig. 4: how VP coverage (fraction of ASes hosting a VP) limits three
// canonical analyses — AS-topology mapping (p2p/c2p links observed),
// link-failure localization (p2p/c2p), and forged-origin hijack detection
// (Type-1/Type-2). The paper runs C-BGP on 6k-AS (1k for localization)
// topologies; we run our Gao-Rexford engine on 2000/600-AS topologies
// (scaled for a single core; the curves' shape is coverage-driven, not
// size-driven).
#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>

#include "bench_util.hpp"
#include "simulator/routing.hpp"
#include "topology/generator.hpp"
#include "usecases/detectors.hpp"

namespace {

using namespace gill;
using sim::DestinationRouting;
using sim::RoutingEngine;
using topo::AsTopology;

const std::vector<double> kCoverages{0.005, 0.01, 0.02, 0.05, 0.10,
                                     0.15,  0.25, 0.50, 0.75, 1.00};
constexpr int kTrials = 3;

struct MappingResult {
  std::vector<double> p2p;  // per coverage
  std::vector<double> c2p;
};

/// Observability of links vs coverage: VPs are added in a random order and
/// each link records the earliest VP whose best-path set exposes it.
MappingResult mapping_experiment(const AsTopology& topology,
                                 const std::vector<DestinationRouting>& trees,
                                 std::mt19937_64& rng) {
  const std::uint32_t n = topology.as_count();
  std::unordered_map<std::uint64_t, bool> is_p2p;
  for (const auto& link : topology.links()) {
    is_p2p[link.key()] = link.is_p2p();
  }

  MappingResult result;
  result.p2p.assign(kCoverages.size(), 0.0);
  result.c2p.assign(kCoverages.size(), 0.0);

  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<bgp::AsNumber> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);

    std::unordered_map<std::uint64_t, std::uint32_t> first_seen;
    first_seen.reserve(topology.link_count());
    for (std::uint32_t position = 0; position < n; ++position) {
      const bgp::AsNumber host = order[position];
      for (const auto& tree : trees) {
        if (!tree.has_route(host)) continue;
        bgp::AsNumber current = host;
        while (tree.next_hop(current) != current) {
          const bgp::AsNumber next = tree.next_hop(current);
          const std::uint64_t key = topo::Link{current, next}.key();
          auto [it, inserted] = first_seen.try_emplace(key, position);
          (void)it;
          current = next;
        }
      }
    }

    std::size_t total_p2p = 0, total_c2p = 0;
    for (const auto& link : topology.links()) {
      (link.is_p2p() ? total_p2p : total_c2p) += 1;
    }
    for (std::size_t c = 0; c < kCoverages.size(); ++c) {
      const auto host_count =
          std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                         kCoverages[c] * n));
      std::size_t seen_p2p = 0, seen_c2p = 0;
      for (const auto& [key, position] : first_seen) {
        if (position < host_count) {
          (is_p2p.at(key) ? seen_p2p : seen_c2p) += 1;
        }
      }
      result.p2p[c] += static_cast<double>(seen_p2p) /
                       static_cast<double>(total_p2p) / kTrials;
      result.c2p[c] += static_cast<double>(seen_c2p) /
                       static_cast<double>(total_c2p) / kTrials;
    }
  }
  return result;
}

struct HijackResult {
  std::vector<double> type1;
  std::vector<double> type2;
};

/// A Type-X hijack for every victim; detected at coverage c when at least
/// one sampled AS routes through the attacker.
HijackResult hijack_experiment(const AsTopology& topology,
                               std::mt19937_64& rng) {
  const std::uint32_t n = topology.as_count();
  RoutingEngine engine(topology);
  HijackResult result;
  result.type1.assign(kCoverages.size(), 0.0);
  result.type2.assign(kCoverages.size(), 0.0);

  std::uniform_int_distribution<bgp::AsNumber> any_as(0, n - 1);
  // Per-trial VP orders (shared across victims for speed).
  std::vector<std::vector<std::uint32_t>> position(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<bgp::AsNumber> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    position[trial].resize(n);
    for (std::uint32_t i = 0; i < n; ++i) position[trial][order[i]] = i;
  }

  for (int type = 1; type <= 2; ++type) {
    auto& out = type == 1 ? result.type1 : result.type2;
    std::vector<double> detected(kCoverages.size(), 0.0);
    std::size_t hijacks = 0;
    for (bgp::AsNumber victim = 0; victim < n; ++victim) {
      bgp::AsNumber attacker = any_as(rng);
      if (attacker == victim) attacker = (victim + 1) % n;
      std::vector<bgp::AsNumber> tail;
      if (type == 1) {
        tail = {victim};
      } else {
        bgp::AsNumber mid = victim;
        for (const bgp::AsNumber neighbor : topology.neighbors(victim)) {
          if (neighbor != attacker) {
            mid = neighbor;
            break;
          }
        }
        tail = {mid, victim};
      }
      const auto routing = engine.compute(
          {sim::Seed{victim, 0, {}},
           sim::Seed{attacker, static_cast<std::uint16_t>(type), tail}});
      ++hijacks;
      for (int trial = 0; trial < kTrials; ++trial) {
        std::uint32_t earliest = n;
        for (bgp::AsNumber as = 0; as < n; ++as) {
          if (routing.has_route(as) && routing.seed_index(as) == 1) {
            earliest = std::min(earliest, position[trial][as]);
          }
        }
        for (std::size_t c = 0; c < kCoverages.size(); ++c) {
          const auto host_count = std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(kCoverages[c] * n));
          if (earliest < host_count) detected[c] += 1.0 / kTrials;
        }
      }
    }
    for (std::size_t c = 0; c < kCoverages.size(); ++c) {
      out[c] = detected[c] / static_cast<double>(hijacks);
    }
  }
  return result;
}

struct LocalizationResult {
  std::vector<double> p2p;
  std::vector<double> c2p;
};

/// Random link failures; a failure is localized at coverage c when the
/// intersection of the sampled VPs' old-minus-new link sets is exactly the
/// failed link (Feldmann-style tomography).
LocalizationResult localization_experiment(const AsTopology& topology,
                                           std::size_t failure_count,
                                           std::mt19937_64& rng) {
  const std::uint32_t n = topology.as_count();
  RoutingEngine engine(topology);
  std::vector<DestinationRouting> trees(n);
  for (bgp::AsNumber origin = 0; origin < n; ++origin) {
    trees[origin] = engine.compute(origin);
  }

  std::vector<std::vector<std::uint32_t>> position(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<bgp::AsNumber> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    position[trial].resize(n);
    for (std::uint32_t i = 0; i < n; ++i) position[trial][order[i]] = i;
  }

  LocalizationResult result;
  result.p2p.assign(kCoverages.size(), 0.0);
  result.c2p.assign(kCoverages.size(), 0.0);
  std::size_t p2p_failures = 0, c2p_failures = 0;

  std::uniform_int_distribution<std::size_t> any_link(
      0, topology.links().size() - 1);
  auto path_links = [&](const DestinationRouting& tree, bgp::AsNumber as) {
    std::vector<std::uint64_t> keys;
    bgp::AsNumber current = as;
    while (tree.has_route(as) && tree.next_hop(current) != current) {
      const bgp::AsNumber next = tree.next_hop(current);
      keys.push_back(topo::Link{current, next}.key());
      current = next;
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  for (std::size_t f = 0; f < failure_count; ++f) {
    const topo::Link link = topology.links()[any_link(rng)];
    const std::uint64_t failed_key = link.key();

    std::vector<bgp::AsNumber> affected;
    for (bgp::AsNumber origin = 0; origin < n; ++origin) {
      if (trees[origin].uses_link(link.a, link.b)) affected.push_back(origin);
    }
    engine.fail_link(link.a, link.b);

    // Per observing AS: the links removed from at least one of its paths
    // (candidate sets of the tomography).
    std::vector<std::pair<bgp::AsNumber, std::vector<std::uint64_t>>>
        observations;
    for (const bgp::AsNumber origin : affected) {
      const DestinationRouting after = engine.compute(origin);
      for (bgp::AsNumber as = 0; as < n; ++as) {
        if (!trees[origin].has_route(as)) continue;
        const auto old_links = path_links(trees[origin], as);
        const auto new_links = path_links(after, as);
        if (old_links == new_links) continue;
        std::vector<std::uint64_t> removed;
        std::set_difference(old_links.begin(), old_links.end(),
                            new_links.begin(), new_links.end(),
                            std::back_inserter(removed));
        if (!removed.empty()) observations.emplace_back(as, std::move(removed));
      }
    }
    engine.restore_link(link.a, link.b);

    (link.is_p2p() ? p2p_failures : c2p_failures) += 1;
    for (int trial = 0; trial < kTrials; ++trial) {
      for (std::size_t c = 0; c < kCoverages.size(); ++c) {
        const auto host_count = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(kCoverages[c] * n));
        std::vector<std::uint64_t> intersection;
        bool first = true;
        bool any = false;
        for (const auto& [as, removed] : observations) {
          if (position[trial][as] >= host_count) continue;
          any = true;
          if (first) {
            intersection = removed;
            first = false;
          } else {
            std::vector<std::uint64_t> next;
            std::set_intersection(intersection.begin(), intersection.end(),
                                  removed.begin(), removed.end(),
                                  std::back_inserter(next));
            intersection = std::move(next);
          }
          if (intersection.empty()) break;
        }
        const bool localized = any && intersection.size() == 1 &&
                               intersection[0] == failed_key;
        if (localized) {
          (link.is_p2p() ? result.p2p[c] : result.c2p[c]) += 1.0 / kTrials;
        }
      }
    }
  }

  for (std::size_t c = 0; c < kCoverages.size(); ++c) {
    if (p2p_failures) {
      result.p2p[c] /= static_cast<double>(p2p_failures);
    }
    if (c2p_failures) {
      result.c2p[c] /= static_cast<double>(c2p_failures);
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace gill;
  bench::header(
      "Fig. 4 — Impact of VP coverage on three canonical analyses",
      "Fig. 4 of the paper (pruned/artificial topologies, C-BGP): link "
      "observability, failure localization, forged-origin hijack detection "
      "vs. % of ASes hosting a VP");
  bench::note("scaled: 2000-AS topology (paper: 6k) for mapping/hijacks, "
              "600-AS (paper: 1k) with 300 failures (paper: 1k) for "
              "localization; 3 VP-placement trials per point");

  bench::Stopwatch watch;
  std::mt19937_64 rng(4242);

  const auto big = topo::generate_artificial({.as_count = 2000, .seed = 1});
  sim::RoutingEngine engine(big);
  std::vector<sim::DestinationRouting> trees(big.as_count());
  for (bgp::AsNumber origin = 0; origin < big.as_count(); ++origin) {
    trees[origin] = engine.compute(origin);
  }
  const auto mapping = mapping_experiment(big, trees, rng);
  trees.clear();
  trees.shrink_to_fit();
  const auto hijacks = hijack_experiment(big, rng);

  const auto small = topo::generate_artificial({.as_count = 600, .seed = 2});
  const auto localization = localization_experiment(small, 300, rng);

  bench::row({"coverage", "p2p-links", "c2p-links", "p2p-fail", "c2p-fail",
              "type1-hij", "type2-hij"});
  for (std::size_t c = 0; c < kCoverages.size(); ++c) {
    bench::row({bench::pct(kCoverages[c], 1), bench::pct(mapping.p2p[c]),
                bench::pct(mapping.c2p[c]), bench::pct(localization.p2p[c]),
                bench::pct(localization.c2p[c]), bench::pct(hijacks.type1[c]),
                bench::pct(hijacks.type2[c])});
  }

  std::printf("\nKey observations (paper, at ~1%% coverage): ~16%% p2p links "
              "observed; ~10%% p2p failures localized; ~24%% Type-1 and "
              "~32%% Type-2 hijacks undetected.\n");
  std::printf("At 50%% coverage the paper reports ~90%% p2p links mapped, "
              "~95%% p2p failures localized, ~4%% Type-1 hijacks missed.\n");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
