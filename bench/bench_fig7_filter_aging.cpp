// Fig. 7: ability of the generated filters to keep discarding updates d
// days after training (train once, evaluate at d = 1..128 with cumulative
// world drift) — the experiment behind the 16-day Component #1 refresh.
// Also reproduces the §7 filter-granularity experiment: GILL's coarse
// (vp, prefix) filters keep matching future redundant updates (87% in the
// paper) while GILL-asp (43%) and GILL-asp-comm (~0%) decay immediately.
#include <random>

#include "bench_util.hpp"
#include "filters/filters.hpp"
#include "redundancy/component1.hpp"
#include "netbase/prefix_alloc.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace {

using namespace gill;

/// One "day" of world drift: new prefixes appear (they match no filter and
/// are retained by the accept-everything default), origins move, and a
/// link flaps.
void drift_one_day(sim::Internet& internet, std::mt19937_64& rng,
                   bgp::Timestamp now, std::uint32_t& next_prefix_slot) {
  const auto& topology = internet.topology();
  std::uniform_int_distribution<bgp::AsNumber> any_as(
      0, topology.as_count() - 1);
  // Prefix-table growth: ~0.7% new prefixes per day of the world's table.
  for (int i = 0; i < 2; ++i) {
    internet.announce_prefix(any_as(rng),
                             net::PrefixAllocator::v4_slot(next_prefix_slot++),
                             now + i);
  }
  for (int i = 0; i < 2; ++i) {  // two prefixes permanently change origin
    const bgp::AsNumber victim = any_as(rng);
    if (internet.prefixes()[victim].empty()) continue;
    internet.change_origin(any_as(rng), internet.prefixes()[victim][0], now);
  }
  // One link flaps permanently (fails one day, restored the next drift).
  std::uniform_int_distribution<std::size_t> any_link(
      0, topology.links().size() - 1);
  const topo::Link link = topology.links()[any_link(rng)];
  internet.fail_link(link.a, link.b, now + 10);
  internet.restore_link(link.a, link.b, now + 20);
}

}  // namespace

int main() {
  bench::header("Fig. 7 — Filter accuracy over time",
                "Fig. 7 and §7: % of updates matched (discarded) by filters "
                "generated at day 0, evaluated d days later");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 16});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 300; as += 5) config.vp_hosts.push_back(as);
  config.rng_seed = 17;
  sim::Internet internet(topology, config);

  // Training window (the paper trains on two days of data). Event activity
  // is heavy-tailed: a quarter of the links/ASes produce all events, and
  // the same hot set stays active across windows (flapping links).
  sim::WorkloadConfig training_workload;
  training_workload.seed = 18;
  training_workload.duration = 6 * 3600;
  training_workload.link_failures_per_hour = 50;
  training_workload.hotspot_fraction = 0.25;
  const auto training = sim::generate_workload(internet, 0, training_workload);

  const auto component1 = red::find_redundant_updates(training);
  const auto filters = filt::generate_filters(component1, {});
  bench::note("training: " + std::to_string(training.size()) +
              " updates; filters: " +
              std::to_string(filters.drop_rule_count()) + " drop rules");

  // --- Fig. 7 curve -------------------------------------------------------
  bench::row({"day d", "matched (discarded)"}, 14);
  std::mt19937_64 drift_rng(19);
  std::uint32_t next_prefix_slot = 500000;  // disjoint from initial slots
  int previous_day = 0;
  bgp::Timestamp clock = 7 * 3600;
  for (const int day : {1, 2, 4, 8, 16, 32, 64, 128}) {
    for (int d = previous_day; d < day; ++d) {
      drift_one_day(internet, drift_rng, clock, next_prefix_slot);
      clock += 3600;
    }
    previous_day = day;
    internet.ground_truth().clear();
    sim::WorkloadConfig test_workload;
    test_workload.seed = 300 + static_cast<std::uint64_t>(day);
    test_workload.link_failures_per_hour = 50;
    test_workload.hotspot_fraction = 0.25;
    const auto test = sim::generate_workload(internet, clock, test_workload);
    clock += 2 * 3600;
    const auto stats = filt::apply_filters(filters, test);
    bench::row({std::to_string(day), bench::pct(stats.matched_fraction())},
               14);
  }
  bench::note("paper: matched fraction decays slowly and drops critically "
              "after ~16 days => Component #1 refresh every 16 days");

  // --- §7 granularity experiment -------------------------------------------
  std::printf("\nFilter granularity (§7): fraction of *future redundant* "
              "updates matched\n");
  // Redundant updates of the training window, split in half by time.
  bgp::UpdateStream r1, r2;
  const bgp::Timestamp midpoint = 3 * 3600;  // half of the training window
  for (const auto& update : training) {
    if (!component1.redundant.contains(
            red::VpPrefix{update.vp, update.prefix})) {
      continue;
    }
    (update.time < midpoint ? r1 : r2).push(update);
  }
  bench::row({"variant", "matched in R2", "paper"}, 16);
  const char* paper[] = {"87%", "43%", "0%"};
  int i = 0;
  for (const auto granularity :
       {filt::Granularity::kVpPrefix, filt::Granularity::kVpPrefixPath,
        filt::Granularity::kVpPrefixPathComm}) {
    filt::FilterTable table(granularity);
    for (const auto& update : r1) table.add_drop(update);
    const auto stats = filt::apply_filters(table, r2);
    bench::row({std::string(filt::to_string(granularity)),
                bench::pct(stats.matched_fraction()), paper[i++]},
               16);
  }
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
