// Table 3 (§11): the long-term impact simulation. The fraction of ASes
// deploying a VP sweeps from 2% to 100%; GILL is trained on updates induced
// by random link failures, then compared against Random-VPs (same update
// budget) and Best-case (all updates) on three use cases: p2p topology
// mapping, p2p failure localization, and Type-1 hijack detection.
#include <random>

#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/detectors.hpp"
#include "usecases/failure_localization.hpp"
#include "usecases/hijack.hpp"

namespace {

using namespace gill;

struct CoverageResult {
  double retained = 0.0;
  double anchors = 0.0;
  double mapping[3];       // GILL, Rnd.VP, Best
  double localization[3];
  double hijack[3];
};

}  // namespace

int main() {
  bench::header("Table 3 — Long-term impact (coverage sweep)",
                "Table 3 of the paper: GILL vs Rnd.-VP vs Best-case at "
                "2/10/25/50/100% of ASes deploying a VP");
  bench::note("500-AS artificial topology (paper: 1k); GILL trained on "
              "updates from 500 random link failures, as in the paper");
  bench::Stopwatch total_watch;

  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 51});
  const std::uint32_t n = topology.as_count();

  // Ground-truth p2p links for the mapping use case.
  std::unordered_set<std::uint64_t> p2p_links;
  for (const auto& link : topology.links()) {
    if (link.is_p2p()) {
      p2p_links.insert(uc::undirected_link_key(link.a, link.b));
    }
  }

  const std::vector<double> coverages{0.02, 0.10, 0.25, 0.50, 1.00};
  std::vector<CoverageResult> results;

  for (const double coverage : coverages) {
    bench::Stopwatch watch;
    // Deploy VPs at a random `coverage` fraction of ASes (one per AS).
    std::mt19937_64 rng(60 + static_cast<std::uint64_t>(coverage * 100));
    std::vector<bgp::AsNumber> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    sim::InternetConfig config;
    const auto host_count =
        std::max<std::uint32_t>(2, static_cast<std::uint32_t>(coverage * n));
    config.vp_hosts.assign(order.begin(), order.begin() + host_count);
    {
      // Heavy-tailed per-AS prefix counts: prefixes of one origin receive
      // correlated updates, which step 3 of Component #1 exploits.
      std::mt19937_64 prefix_rng(59);
      config.prefixes = net::PrefixAllocator::assign(n, prefix_rng, 6);
    }
    config.rng_seed = 61;
    sim::Internet internet(topology, config);

    const auto ribs = internet.rib_dump(0);
    const auto origins = uc::OriginTable::from_rib(ribs);

    // Training: updates induced by random link failures (§11).
    sim::WorkloadConfig training_workload;
    training_workload.seed = 62;
    training_workload.duration = 10 * 3600;
    training_workload.link_failures_per_hour = 50;  // 500 failures, as §11
    training_workload.moas_per_hour = 0;
    training_workload.origin_changes_per_hour = 3;  // Component #2 events
    training_workload.community_changes_per_hour = 0;
    training_workload.hijacks_per_hour = 0;
    training_workload.hotspot_fraction = 1.0;  // random, like the paper
    const auto training =
        sim::generate_workload(internet, 10, training_workload);
    internet.ground_truth().clear();

    // Evaluation: a block of fresh failures (for localization), then a
    // block of Type-1 hijacks — disjoint so that hijack reactions do not
    // pollute the localization windows.
    sim::WorkloadConfig failures_workload;
    failures_workload.seed = 63;
    failures_workload.duration = 4 * 3600;
    failures_workload.link_failures_per_hour = 8;
    failures_workload.restore_after_min = 1800;  // restores land outside
    failures_workload.restore_after_max = 2400;  // localization windows
    failures_workload.moas_per_hour = 0;
    failures_workload.origin_changes_per_hour = 0;
    failures_workload.community_changes_per_hour = 0;
    failures_workload.hijacks_per_hour = 0;
    failures_workload.hotspot_fraction = 1.0;  // evaluation events anywhere
    bgp::UpdateStream eval =
        sim::generate_workload(internet, 6 * 3600, failures_workload);
    sim::WorkloadConfig attacks_workload = failures_workload;
    attacks_workload.seed = 65;
    attacks_workload.duration = 3 * 3600;
    attacks_workload.link_failures_per_hour = 0;
    attacks_workload.hijacks_per_hour = 20;
    eval.append(sim::generate_workload(internet, 11 * 3600, attacks_workload));
    eval.sort();
    const auto& truths = internet.ground_truth();

    sample::SamplingContext ctx;
    ctx.all_updates = &eval;
    ctx.all_ribs = &ribs;
    ctx.training = &training;
    ctx.training_ribs = &ribs;
    ctx.topology = &topology;
    ctx.vp_hosts = &config.vp_hosts;
    ctx.truths = &truths;
    ctx.origins = &origins;
    ctx.seed = 64;

    sample::GillConfig gill_config;
    gill_config.component2.stop_threshold = 0.85;
    sample::GillSampler gill(gill_config);
    uc::DataSample gill_sample = gill.sample(ctx, 0);
    const std::size_t budget = std::max<std::size_t>(gill_sample.updates.size(), 1);

    sample::RandomVpSampler random_vp;
    uc::DataSample random_sample = random_vp.sample(ctx, budget);
    uc::DataSample best;
    best.updates = eval;
    // §11 compares what the *collected updates* reveal — no RIB snapshots
    // are part of this experiment in the paper.
    gill_sample.ribs = bgp::UpdateStream{};
    random_sample.ribs = bgp::UpdateStream{};

    CoverageResult result;
    result.retained = static_cast<double>(budget) /
                      std::max<double>(1.0, static_cast<double>(eval.size()));
    result.anchors =
        static_cast<double>(gill.last_pipeline().anchors.size()) /
        static_cast<double>(config.vp_hosts.size());

    const uc::DataSample* samples[3] = {&gill_sample, &random_sample, &best};
    for (int s = 0; s < 3; ++s) {
      result.mapping[s] = uc::topology_mapping_score(*samples[s], p2p_links);
      // Localization needs the pre-failure routes: every scheme gets the
      // same public day-0 RIB snapshot (mapping/hijack stay updates-only,
      // per the §11 protocol).
      uc::DataSample with_snapshot = *samples[s];
      with_snapshot.ribs = ribs;
      result.localization[s] =
          uc::failure_localization_score(with_snapshot, truths, true);
      result.hijack[s] = uc::hijack_visibility_score(*samples[s], truths, 1);
    }
    results.push_back(result);
    std::printf("  coverage %s: eval %zu updates, GILL budget %zu, "
                "%zu anchors (%.1fs)\n",
                bench::pct(coverage, 0).c_str(), eval.size(), budget,
                gill.last_pipeline().anchors.size(), watch.seconds());
  }
  std::printf("\n");

  std::vector<std::string> head{"coverage"};
  for (const double c : coverages) head.push_back(bench::pct(c, 0));
  bench::row(head, 10);
  auto print_metric = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& result : results) {
      cells.push_back(getter(result));
    }
    bench::row(cells, 10);
  };
  print_metric("retained", [](const CoverageResult& r) {
    return bench::pct(r.retained, 1);
  });
  print_metric("anchors", [](const CoverageResult& r) {
    return bench::pct(r.anchors, 1);
  });
  for (int s = 0; s < 3; ++s) {
    const char* scheme[] = {"GILL", "Rnd.VP", "Best"};
    std::printf("\n-- %s --\n", scheme[s]);
    print_metric("topo-p2p", [&](const CoverageResult& r) {
      return bench::pct(r.mapping[s], 0);
    });
    print_metric("fail-p2p", [&](const CoverageResult& r) {
      return bench::pct(r.localization[s], 0);
    });
    print_metric("hijack-1", [&](const CoverageResult& r) {
      return bench::pct(r.hijack[s], 0);
    });
  }

  std::printf("\nExpected takeaways (paper): GILL retains a shrinking "
              "fraction as coverage grows (18%% -> 4.4%%) with shrinking "
              "anchor share (17%% -> 0.4%%); Best-case > GILL >> Rnd.-VP "
              "everywhere, and GILL at 50%% coverage with ~RIS/RV-today "
              "volume triples p2p mapping vs 2%% coverage.\n");
  std::printf("elapsed: %.1fs\n", total_watch.seconds());
  return 0;
}
