// Table 2 (§10): GILL's sampling vs 14 baselines on the five use cases
// (transient paths, MOAS, topology mapping, action communities,
// unchanged-path updates). Every baseline processes the same number of
// updates as GILL retains; use-case-specific baselines may optimize their
// own objective (and are expected to win their diagonal while losing
// elsewhere — the overfitting takeaway).
#include <memory>

#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main() {
  using namespace gill;
  bench::header("Table 2 — Benchmark of GILL's sampling on five use cases",
                "Table 2 of the paper (detection/observation rate per "
                "scheme, equal update budgets)");
  bench::Stopwatch watch;

  // World: 400 ASes, 80 VPs over 68 hosting ASes, heavy-tailed prefix
  // counts, recurrent events (paper: all RIS+RV VPs over 30 one-hour
  // periods of Sept. 2023).
  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 31});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 340; as += 5) {
    config.vp_hosts.push_back(as);
    if (as < 60) config.vp_hosts.push_back(as);
  }
  {
    std::mt19937_64 prefix_rng(32);
    config.prefixes = net::PrefixAllocator::assign(400, prefix_rng, 6);
  }
  config.rng_seed = 33;
  config.path_exploration_probability = 0.35;
  sim::Internet internet(topology, config);

  const auto ribs = internet.rib_dump(0);
  const auto origins = uc::OriginTable::from_rib(ribs);

  // Training window for GILL.
  sim::WorkloadConfig training_workload;
  training_workload.seed = 34;
  training_workload.duration = 6 * 3600;
  training_workload.link_failures_per_hour = 50;
  training_workload.hotspot_fraction = 0.2;
  const auto training = sim::generate_workload(internet, 10, training_workload);
  internet.ground_truth().clear();

  // Evaluation: 5 one-hour periods (paper: 30).
  bgp::UpdateStream eval;
  for (int period = 0; period < 5; ++period) {
    sim::WorkloadConfig workload;
    workload.seed = 40 + static_cast<std::uint64_t>(period);
    workload.link_failures_per_hour = 50;
    workload.hotspot_fraction = 0.2;
    eval.append(sim::generate_workload(
        internet, 7 * 3600 + period * 7200, workload));
  }
  eval.sort();
  const auto truths = internet.ground_truth();

  sample::SamplingContext ctx;
  ctx.all_updates = &eval;
  ctx.all_ribs = &ribs;
  ctx.training = &training;
  ctx.training_ribs = &ribs;
  ctx.topology = &topology;
  ctx.vp_hosts = &config.vp_hosts;
  ctx.truths = &truths;
  ctx.origins = &origins;
  ctx.seed = 77;

  // GILL first: it sets the budget everyone else gets.
  sample::GillSampler gill;
  const auto gill_sample = gill.sample(ctx, 0);
  const std::size_t budget = gill_sample.updates.size();
  std::printf("eval stream: %zu updates; GILL retains %zu (%s); %zu anchor "
              "VPs; budget for all baselines = %zu\n\n",
              eval.size(), budget,
              bench::pct(static_cast<double>(budget) /
                         static_cast<double>(eval.size()))
                  .c_str(),
              gill.last_pipeline().anchors.size(), budget);

  std::vector<std::unique_ptr<sample::Sampler>> samplers;
  samplers.push_back(std::make_unique<sample::GillUpdSampler>());
  samplers.push_back(std::make_unique<sample::GillVpSampler>());
  samplers.push_back(std::make_unique<sample::RandomUpdateSampler>());
  samplers.push_back(std::make_unique<sample::RandomVpSampler>());
  samplers.push_back(std::make_unique<sample::AsDistanceSampler>());
  samplers.push_back(std::make_unique<sample::UnbiasedSampler>());
  samplers.push_back(
      std::make_unique<sample::DefinitionSampler>(red::Definition::kDef1));
  samplers.push_back(
      std::make_unique<sample::DefinitionSampler>(red::Definition::kDef2));
  samplers.push_back(
      std::make_unique<sample::DefinitionSampler>(red::Definition::kDef3));
  for (const auto use_case :
       {sample::UseCase::kTransientPaths, sample::UseCase::kMoas,
        sample::UseCase::kTopologyMapping, sample::UseCase::kActionComms,
        sample::UseCase::kUnchangedPaths}) {
    samplers.push_back(std::make_unique<sample::UseCaseSampler>(use_case));
  }

  const std::vector<sample::UseCase> use_cases{
      sample::UseCase::kTransientPaths, sample::UseCase::kMoas,
      sample::UseCase::kTopologyMapping, sample::UseCase::kActionComms,
      sample::UseCase::kUnchangedPaths};
  const char* use_case_names[] = {"I   Transient paths", "II  MOAS",
                                  "III Topology mapping",
                                  "IV  Action communities",
                                  "V   Unchanged-path upd."};

  // Score matrix: rows = schemes (GILL first), columns = use cases.
  std::vector<std::string> scheme_names{"GILL"};
  std::vector<std::array<double, 5>> scores;
  {
    std::array<double, 5> row{};
    for (std::size_t u = 0; u < use_cases.size(); ++u) {
      row[u] = sample::score_use_case(use_cases[u], gill_sample, ctx);
    }
    scores.push_back(row);
  }
  for (const auto& sampler : samplers) {
    const auto sample = sampler->sample(ctx, budget);
    std::array<double, 5> row{};
    for (std::size_t u = 0; u < use_cases.size(); ++u) {
      row[u] = sample::score_use_case(use_cases[u], sample, ctx);
    }
    scheme_names.push_back(sampler->name());
    scores.push_back(row);
    std::printf("  [%s: %zu updates sampled]\n", sampler->name().c_str(),
                sample.updates.size());
  }
  std::printf("\n");

  // Print transposed like the paper: use cases as rows.
  {
    std::vector<std::string> head{"use case \\ scheme"};
    for (const auto& name : scheme_names) head.push_back(name);
    bench::row(head, 11);
  }
  for (std::size_t u = 0; u < use_cases.size(); ++u) {
    std::vector<std::string> cells{use_case_names[u]};
    for (const auto& row : scores) cells.push_back(bench::pct(row[u], 0));
    bench::row(cells, 11);
  }

  std::printf("\nExpected takeaways (paper): GILL >= every naive and "
              "definition-based baseline on every use case; each use-case "
              "specific wins its own row (diagonal) but loses the others; "
              "GILL-upd and GILL-vp each fail somewhere.\n");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
