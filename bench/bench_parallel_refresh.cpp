// Parallel analysis engine: serial vs worker-pool filter-refresh pipeline
// (DESIGN.md §9). Runs the same GILL pipeline (Component #1 correlation
// groups, event inference, pairwise VP scoring, filter generation) over one
// simulated training window, first on the historical serial path and then
// on a 4-thread ThreadPool, and reports the wall-clock speedup. Emits
// BENCH_parallel.json.
//
// Under --strict the 1.8x floor at 4 threads is enforced only when the
// machine actually has >= 4 hardware threads; on smaller boxes the run is
// informational (a 1-core container cannot show parallel speedup, and the
// determinism tests already pin correctness there).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/gill_pipeline.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace {

using namespace gill;

constexpr std::size_t kThreads = 4;
constexpr int kRepetitions = 3;
constexpr double kStrictSpeedupFloor = 1.8;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Parallel analysis engine: filter-refresh pipeline speedup",
                "§7 orchestration cost; the refresh the platform now runs "
                "off the event loop");

  // World: 400 ASes, one VP per fifth AS, a 6-hour training window — the
  // same scale Table 2 trains GILL on, so the timed region is dominated by
  // the per-prefix Component #1 pass and the pairwise scoring stage.
  const auto topology =
      topo::generate_artificial({.as_count = 400, .seed = 91});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 340; as += 5) {
    config.vp_hosts.push_back(as);
  }
  config.rng_seed = 92;
  config.path_exploration_probability = 0.35;
  sim::Internet internet(topology, config);
  const auto ribs = internet.rib_dump(0);
  sim::WorkloadConfig workload;
  workload.seed = 93;
  workload.duration = 6 * 3600;
  workload.link_failures_per_hour = 50;
  workload.hotspot_fraction = 0.2;
  const auto training = sim::generate_workload(internet, 10, workload);
  std::printf("training window: %zu updates over %zu VPs\n\n", training.size(),
              config.vp_hosts.size());

  const sample::GillConfig gill_config;

  // Warm-up pass (page in the streams, settle the allocator) plus the
  // reference result the parallel runs must reproduce byte-for-byte.
  const auto reference =
      sample::run_gill_pipeline(ribs, training, {}, gill_config);

  const auto time_runs = [&](const sample::PipelineRuntime& runtime) {
    double best = 1e300;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const bench::Stopwatch watch;
      const auto result =
          sample::run_gill_pipeline(ribs, training, {}, gill_config, runtime);
      const double seconds = watch.seconds();
      if (seconds < best) best = seconds;
      if (result.anchors != reference.anchors ||
          result.filters.describe() != reference.filters.describe()) {
        std::fprintf(stderr, "FAIL: run diverged from the serial result\n");
        std::exit(1);
      }
    }
    return best;
  };

  const double serial_s = time_runs({});
  par::ThreadPool pool(kThreads);
  sample::PipelineRuntime runtime;
  runtime.pool = &pool;
  const double parallel_s = time_runs(runtime);
  const double speedup = serial_s / parallel_s;
  const unsigned hardware = std::thread::hardware_concurrency();

  bench::row({"path", "best_of_3_s", "speedup"}, 16);
  bench::row({"serial", bench::num(serial_s, 3), "1.00"}, 16);
  bench::row({"4 threads", bench::num(parallel_s, 3),
              bench::num(speedup, 2)},
             16);
  std::printf("\nhardware threads: %u; pool shards executed: %zu\n", hardware,
              pool.shards_executed());

  std::string json = "{\"bench\":\"parallel_refresh\",";
  json += "\"training_updates\":" + std::to_string(training.size()) + ",";
  json += "\"threads\":" + std::to_string(kThreads) + ",";
  json += "\"hardware_threads\":" + std::to_string(hardware) + ",";
  json += "\"serial_s\":" + json_number(serial_s) + ",";
  json += "\"parallel_s\":" + json_number(parallel_s) + ",";
  json += "\"speedup\":" + json_number(speedup) + ",";
  json += "\"strict_speedup_floor\":" + json_number(kStrictSpeedupFloor) +
          "}\n";
  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_parallel.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_parallel.json\n");
    return 1;
  }

  if (strict) {
    if (hardware < kThreads) {
      bench::note("strict floor skipped: fewer than 4 hardware threads");
    } else if (speedup < kStrictSpeedupFloor) {
      std::fprintf(stderr, "FAIL: %.2fx is below the %.1fx floor\n", speedup,
                   kStrictSpeedupFloor);
      return 1;
    }
  }
  return 0;
}
