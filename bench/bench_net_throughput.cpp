// Networking-layer throughput: batched BGP UPDATEs pushed through a
// loopback TcpTransport pair (FakePeer generator -> kernel TCP ->
// daemon-side transport -> BgpDaemon decode), both ends driven by one
// epoll event loop. Reports decoded msgs/sec and socket bytes/sec, and
// emits BENCH_net.json.
//
// This bounds the per-session ingest rate of gill_collectord (DESIGN.md
// §7): the paper's busiest VPs export ~28K updates/hour, so the floor
// enforced under --strict (2000 msgs/sec) leaves >250x headroom per
// session even on a loaded CI box.
//
// The second half benches the sharded ingest plane (DESIGN.md §14): the
// same loopback peers spread across a 1-, 2- and 4-shard
// collect::ShardedPlatform fleet, reporting per-shard and aggregate
// msgs/sec. --strict enforces the 1.5x aggregate scaling floor at 4
// shards, but only on machines with >= 4 hardware threads (below that
// the fleet runs are informational — the shards time-slice one core).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "collector/sharded.hpp"
#include "daemon/daemon.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace {

using namespace gill;

constexpr std::uint64_t kTotalUpdates = 100000;
constexpr std::uint64_t kBatch = 500;  // one send_synthetic_burst per batch
constexpr double kStrictMsgsPerSecFloor = 2000.0;

constexpr std::size_t kFleetPeers = 8;
constexpr std::uint64_t kFleetUpdatesPerPeer = 3000;
constexpr double kStrictFleetScalingFloor = 1.5;  // 4 shards vs 1 shard

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

/// One fleet run: kFleetPeers loopback sessions against an S-shard
/// ShardedPlatform, every peer pushing kFleetUpdatesPerPeer updates.
struct FleetResult {
  std::size_t shards = 0;
  std::uint64_t updates = 0;
  double elapsed_s = 0;
  double msgs_per_sec = 0;
  std::vector<double> per_shard_msgs_per_sec;
  bool ok = false;
};

FleetResult run_fleet(std::size_t shard_count) {
  FleetResult result;
  result.shards = shard_count;

  metrics::Registry registry;
  collect::ShardedPlatformConfig config;
  config.shards = shard_count;
  config.platform.local_as = 65000;
  config.platform.registry = &registry;
  config.platform.component1_refresh = 0;  // ingest only: no merge refresh
  collect::ShardedPlatform platform(config);
  if (!platform.listen("127.0.0.1", 0)) {
    std::fprintf(stderr, "error: fleet(%zu): cannot bind listeners\n",
                 shard_count);
    return result;
  }
  platform.start(/*tick_ms=*/1);

  net::EventLoop client_loop;
  std::vector<std::unique_ptr<net::TcpTransport>> clients;
  std::vector<std::unique_ptr<daemon::FakePeer>> peers;
  for (std::size_t i = 0; i < kFleetPeers; ++i) {
    auto client = std::make_unique<net::TcpTransport>(
        client_loop, net::Role::kPeerSide, &registry);
    if (!client->dial("127.0.0.1", platform.port())) {
      std::fprintf(stderr, "error: fleet(%zu): dial %zu failed\n", shard_count,
                   i);
      return result;
    }
    peers.push_back(std::make_unique<daemon::FakePeer>(
        static_cast<bgp::AsNumber>(65010 + i), *client));
    clients.push_back(std::move(client));
  }

  const auto pump = [&] {
    client_loop.run_once(1);
    for (auto& peer : peers) peer->poll();
    for (auto& client : clients) client->sync();
  };

  const auto all_established = [&] {
    for (const auto& peer : peers) {
      if (!peer->established()) return false;
    }
    return platform.peer_count() == kFleetPeers;
  };
  for (int i = 0; i < 50000 && !all_established(); ++i) pump();
  if (!all_established()) {
    std::fprintf(stderr, "error: fleet(%zu): sessions never established\n",
                 shard_count);
    return result;
  }

  const std::uint64_t total = kFleetPeers * kFleetUpdatesPerPeer;
  const bench::Stopwatch watch;
  std::uint64_t sent_per_peer = 0;
  while (sent_per_peer < kFleetUpdatesPerPeer) {
    for (std::size_t i = 0; i < kFleetPeers; ++i) {
      peers[i]->send_synthetic_burst(
          kBatch, (10u << 24) | (static_cast<std::uint32_t>(i) << 16) |
                      (static_cast<std::uint32_t>(sent_per_peer / kBatch)
                       << 8));
    }
    sent_per_peer += kBatch;
    // Same backpressure discipline as the single-session run: drain before
    // the next burst so socket buffers bound memory, not the batch count.
    int guard = 0;
    while (platform.stored_updates() < kFleetPeers * sent_per_peer &&
           ++guard < 200000) {
      pump();
    }
  }
  int guard = 0;
  while (platform.stored_updates() < total && ++guard < 200000) pump();
  result.elapsed_s = watch.seconds();

  result.updates = platform.stored_updates();
  result.msgs_per_sec = static_cast<double>(result.updates) / result.elapsed_s;
  for (std::size_t shard = 0; shard < platform.shard_count(); ++shard) {
    const std::size_t stored = platform.with_shard(
        shard, [](collect::Platform& p) { return p.store().stored(); });
    result.per_shard_msgs_per_sec.push_back(static_cast<double>(stored) /
                                            result.elapsed_s);
  }
  platform.stop();
  result.ok = result.updates >= total;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Networking layer: loopback TCP session throughput",
                "§8 daemon ingest over real sockets (Table 1 context)");

  net::EventLoop loop;
  metrics::Registry registry;
  std::unique_ptr<net::TcpTransport> server;
  std::unique_ptr<daemon::BgpDaemon> bgp_daemon;
  net::TcpListener listener(loop, &registry);
  if (!listener.listen("127.0.0.1", 0,
                       [&](int fd, std::string, std::uint16_t) {
                         server = std::make_unique<net::TcpTransport>(
                             loop, net::Role::kDaemonSide, &registry);
                         server->adopt(fd);
                         bgp_daemon = std::make_unique<daemon::BgpDaemon>(
                             1, 65000, *server, nullptr, nullptr, &registry);
                         bgp_daemon->start(1);
                       })) {
    std::fprintf(stderr, "error: cannot bind a loopback listener\n");
    return 1;
  }
  net::TcpTransport client(loop, net::Role::kPeerSide, &registry);
  if (!client.dial("127.0.0.1", listener.port())) {
    std::fprintf(stderr, "error: cannot dial the loopback listener\n");
    return 1;
  }
  daemon::FakePeer peer(65010, client);

  const auto pump = [&] {
    loop.run_once(1);
    if (bgp_daemon) bgp_daemon->poll(1);
    peer.poll();
    client.sync();
    if (server) server->sync();
  };

  for (int i = 0; i < 5000; ++i) {
    if (bgp_daemon &&
        bgp_daemon->state() == daemon::SessionState::kEstablished &&
        peer.established()) {
      break;
    }
    pump();
  }
  if (!bgp_daemon ||
      bgp_daemon->state() != daemon::SessionState::kEstablished) {
    std::fprintf(stderr, "error: session never established over loopback\n");
    return 1;
  }

  const std::uint64_t bytes_before =
      registry.counter_total("gill_net_bytes_read_total");
  const bench::Stopwatch watch;
  std::uint64_t sent = 0;
  while (sent < kTotalUpdates) {
    peer.send_synthetic_burst(kBatch, (10u << 24) | ((sent / kBatch) << 8));
    sent += kBatch;
    // Drain before the next burst so the socket buffer bounds memory, not
    // the batch count (this is the backpressure path a slow peer hits).
    int guard = 0;
    while (bgp_daemon->stats().updates_received < sent && ++guard < 100000) {
      pump();
    }
  }
  const double seconds = watch.seconds();
  const std::uint64_t received = bgp_daemon->stats().updates_received;
  const std::uint64_t bytes =
      registry.counter_total("gill_net_bytes_read_total") - bytes_before;
  const double msgs_per_sec = static_cast<double>(received) / seconds;
  const double bytes_per_sec = static_cast<double>(bytes) / seconds;

  bench::row({"metric", "value"}, 24);
  bench::row({"updates_decoded", bench::num(static_cast<double>(received), 0)},
             24);
  bench::row({"socket_bytes", bench::num(static_cast<double>(bytes), 0)}, 24);
  bench::row({"elapsed_s", bench::num(seconds, 3)}, 24);
  bench::row({"msgs_per_sec", bench::num(msgs_per_sec, 0)}, 24);
  bench::row({"bytes_per_sec", bench::num(bytes_per_sec, 0)}, 24);

  // --- sharded-fleet runs (DESIGN.md §14) ----------------------------------
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool scaling_enforceable = hw_threads >= 4;
  bench::note("fleet: " + std::to_string(kFleetPeers) + " peers x " +
              std::to_string(kFleetUpdatesPerPeer) +
              " updates across 1/2/4 ingest shards");
  std::vector<FleetResult> fleet;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    FleetResult run = run_fleet(shards);
    if (!run.ok) {
      std::fprintf(stderr, "FAIL: fleet(%zu) lost updates (%llu stored)\n",
                   shards, static_cast<unsigned long long>(run.updates));
      return 1;
    }
    bench::row({"fleet_shards_" + std::to_string(shards) + "_msgs_per_sec",
                bench::num(run.msgs_per_sec, 0)},
               32);
    fleet.push_back(std::move(run));
  }
  const double scaling_x4 =
      fleet.front().msgs_per_sec > 0
          ? fleet.back().msgs_per_sec / fleet.front().msgs_per_sec
          : 0;
  bench::row({"fleet_scaling_x4", bench::num(scaling_x4, 2)}, 32);
  if (!scaling_enforceable) {
    bench::note("scaling floor informational: " + std::to_string(hw_threads) +
                " hardware thread(s) < 4");
  }

  std::string json = "{\"bench\":\"net_throughput\",";
  json += "\"updates\":" + std::to_string(received) + ",";
  json += "\"socket_bytes\":" + std::to_string(bytes) + ",";
  json += "\"elapsed_s\":" + json_number(seconds) + ",";
  json += "\"msgs_per_sec\":" + json_number(msgs_per_sec) + ",";
  json += "\"bytes_per_sec\":" + json_number(bytes_per_sec) + ",";
  json += "\"strict_msgs_per_sec_floor\":" +
          json_number(kStrictMsgsPerSecFloor) + ",";
  json += "\"fleet\":[";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const FleetResult& run = fleet[i];
    if (i != 0) json += ",";
    json += "{\"shards\":" + std::to_string(run.shards) + ",";
    json += "\"peers\":" + std::to_string(kFleetPeers) + ",";
    json += "\"updates\":" + std::to_string(run.updates) + ",";
    json += "\"elapsed_s\":" + json_number(run.elapsed_s) + ",";
    json += "\"msgs_per_sec\":" + json_number(run.msgs_per_sec) + ",";
    json += "\"per_shard_msgs_per_sec\":[";
    for (std::size_t shard = 0; shard < run.per_shard_msgs_per_sec.size();
         ++shard) {
      if (shard != 0) json += ",";
      json += json_number(run.per_shard_msgs_per_sec[shard]);
    }
    json += "]}";
  }
  json += "],";
  json += "\"fleet_scaling_x4\":" + json_number(scaling_x4) + ",";
  json += "\"strict_fleet_scaling_floor\":" +
          json_number(kStrictFleetScalingFloor) + ",";
  json += "\"fleet_scaling_enforced\":";
  json += (strict && scaling_enforceable) ? "true" : "false";
  json += "}\n";
  std::FILE* out = std::fopen("BENCH_net.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_net.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_net.json\n");
    return 1;
  }

  if (received < kTotalUpdates) {
    std::fprintf(stderr, "FAIL: only %llu of %llu updates arrived\n",
                 static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(kTotalUpdates));
    return 1;
  }
  if (strict && msgs_per_sec < kStrictMsgsPerSecFloor) {
    std::fprintf(stderr, "FAIL: %.0f msgs/sec is below the %.0f floor\n",
                 msgs_per_sec, kStrictMsgsPerSecFloor);
    return 1;
  }
  if (strict && scaling_enforceable && scaling_x4 < kStrictFleetScalingFloor) {
    std::fprintf(stderr,
                 "FAIL: 4-shard aggregate scaled %.2fx over 1 shard, below "
                 "the %.2fx floor\n",
                 scaling_x4, kStrictFleetScalingFloor);
    return 1;
  }
  return 0;
}
