// Networking-layer throughput: batched BGP UPDATEs pushed through a
// loopback TcpTransport pair (FakePeer generator -> kernel TCP ->
// daemon-side transport -> BgpDaemon decode), both ends driven by one
// epoll event loop. Reports decoded msgs/sec and socket bytes/sec, and
// emits BENCH_net.json.
//
// This bounds the per-session ingest rate of gill_collectord (DESIGN.md
// §7): the paper's busiest VPs export ~28K updates/hour, so the floor
// enforced under --strict (2000 msgs/sec) leaves >250x headroom per
// session even on a loaded CI box.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "daemon/daemon.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace {

using namespace gill;

constexpr std::uint64_t kTotalUpdates = 100000;
constexpr std::uint64_t kBatch = 500;  // one send_synthetic_burst per batch
constexpr double kStrictMsgsPerSecFloor = 2000.0;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Networking layer: loopback TCP session throughput",
                "§8 daemon ingest over real sockets (Table 1 context)");

  net::EventLoop loop;
  metrics::Registry registry;
  std::unique_ptr<net::TcpTransport> server;
  std::unique_ptr<daemon::BgpDaemon> bgp_daemon;
  net::TcpListener listener(loop, &registry);
  if (!listener.listen("127.0.0.1", 0,
                       [&](int fd, std::string, std::uint16_t) {
                         server = std::make_unique<net::TcpTransport>(
                             loop, net::Role::kDaemonSide, &registry);
                         server->adopt(fd);
                         bgp_daemon = std::make_unique<daemon::BgpDaemon>(
                             1, 65000, *server, nullptr, nullptr, &registry);
                         bgp_daemon->start(1);
                       })) {
    std::fprintf(stderr, "error: cannot bind a loopback listener\n");
    return 1;
  }
  net::TcpTransport client(loop, net::Role::kPeerSide, &registry);
  if (!client.dial("127.0.0.1", listener.port())) {
    std::fprintf(stderr, "error: cannot dial the loopback listener\n");
    return 1;
  }
  daemon::FakePeer peer(65010, client);

  const auto pump = [&] {
    loop.run_once(1);
    if (bgp_daemon) bgp_daemon->poll(1);
    peer.poll();
    client.sync();
    if (server) server->sync();
  };

  for (int i = 0; i < 5000; ++i) {
    if (bgp_daemon &&
        bgp_daemon->state() == daemon::SessionState::kEstablished &&
        peer.established()) {
      break;
    }
    pump();
  }
  if (!bgp_daemon ||
      bgp_daemon->state() != daemon::SessionState::kEstablished) {
    std::fprintf(stderr, "error: session never established over loopback\n");
    return 1;
  }

  const std::uint64_t bytes_before =
      registry.counter_total("gill_net_bytes_read_total");
  const bench::Stopwatch watch;
  std::uint64_t sent = 0;
  while (sent < kTotalUpdates) {
    peer.send_synthetic_burst(kBatch, (10u << 24) | ((sent / kBatch) << 8));
    sent += kBatch;
    // Drain before the next burst so the socket buffer bounds memory, not
    // the batch count (this is the backpressure path a slow peer hits).
    int guard = 0;
    while (bgp_daemon->stats().updates_received < sent && ++guard < 100000) {
      pump();
    }
  }
  const double seconds = watch.seconds();
  const std::uint64_t received = bgp_daemon->stats().updates_received;
  const std::uint64_t bytes =
      registry.counter_total("gill_net_bytes_read_total") - bytes_before;
  const double msgs_per_sec = static_cast<double>(received) / seconds;
  const double bytes_per_sec = static_cast<double>(bytes) / seconds;

  bench::row({"metric", "value"}, 24);
  bench::row({"updates_decoded", bench::num(static_cast<double>(received), 0)},
             24);
  bench::row({"socket_bytes", bench::num(static_cast<double>(bytes), 0)}, 24);
  bench::row({"elapsed_s", bench::num(seconds, 3)}, 24);
  bench::row({"msgs_per_sec", bench::num(msgs_per_sec, 0)}, 24);
  bench::row({"bytes_per_sec", bench::num(bytes_per_sec, 0)}, 24);

  std::string json = "{\"bench\":\"net_throughput\",";
  json += "\"updates\":" + std::to_string(received) + ",";
  json += "\"socket_bytes\":" + std::to_string(bytes) + ",";
  json += "\"elapsed_s\":" + json_number(seconds) + ",";
  json += "\"msgs_per_sec\":" + json_number(msgs_per_sec) + ",";
  json += "\"bytes_per_sec\":" + json_number(bytes_per_sec) + ",";
  json += "\"strict_msgs_per_sec_floor\":" +
          json_number(kStrictMsgsPerSecFloor) + "}\n";
  std::FILE* out = std::fopen("BENCH_net.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_net.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_net.json\n");
    return 1;
  }

  if (received < kTotalUpdates) {
    std::fprintf(stderr, "FAIL: only %llu of %llu updates arrived\n",
                 static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(kTotalUpdates));
    return 1;
  }
  if (strict && msgs_per_sec < kStrictMsgsPerSecFloor) {
    std::fprintf(stderr, "FAIL: %.0f msgs/sec is below the %.0f floor\n",
                 msgs_per_sec, kStrictMsgsPerSecFloor);
    return 1;
  }
  return 0;
}
