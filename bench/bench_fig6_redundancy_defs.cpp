// Fig. 6 + §4.2 measurements: redundancy among VPs for the three gradually
// stricter redundancy definitions, and the fraction of updates redundant
// with at least one other update. The paper computes this over one hour of
// RIS+RV data from 100 random VPs (median of 30 seeds); we generate the
// hour with the event simulator.
#include "bench_util.hpp"
#include "bgp/delta.hpp"
#include "redundancy/definitions.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main() {
  using namespace gill;
  bench::header("Fig. 6 — Redundancy among 100 VPs under Defs 1/2/3",
                "Fig. 6 and §4.2: VP vp1 is redundant with vp2 if >90% of "
                "vp1's updates are redundant with an update of vp2");
  bench::note("simulated hour on a 500-AS topology, 100 VPs; median over 5 "
              "seeds (paper: 30 seeds)");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 7});
  constexpr int kSeeds = 5;
  std::vector<double> vp_fraction[3];
  std::vector<double> update_fraction[3];

  for (int seed = 0; seed < kSeeds; ++seed) {
    sim::InternetConfig config;
    // 100 VPs over 89 distinct ASes: RIS/RV host several VPs per AS
    // (1537 VPs in 816 ASes, §2), and co-located VPs export near-identical
    // feeds — a major redundancy source.
    for (bgp::AsNumber as = 0; as < 445; as += 5) {
      config.vp_hosts.push_back(as);
      if (as < 55) config.vp_hosts.push_back(as);  // 11 duplicated hosts
    }
    config.rng_seed = 100 + seed;
    sim::Internet internet(topology, config);
    sim::WorkloadConfig workload;
    workload.seed = 200 + seed;
    workload.link_failures_per_hour = 40;
    workload.hotspot_fraction = 0.4;
    const auto stream = sim::generate_workload(internet, 0, workload);

    const auto annotated = bgp::DeltaTracker::annotate_stream(stream);
    const red::RedundancyAnalyzer analyzer(annotated);
    for (int d = 0; d < 3; ++d) {
      const auto definition = static_cast<red::Definition>(d + 1);
      vp_fraction[d].push_back(analyzer.redundant_vp_fraction(definition));
      update_fraction[d].push_back(
          analyzer.redundant_update_fraction(definition));
    }
  }

  auto median = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };

  bench::row({"definition", "VPs redundant", "paper", "updates red.",
              "paper"}, 16);
  const char* paper_vp[] = {"70%", "26%", "22%"};
  const char* paper_upd[] = {"97%", "77%", "70%"};
  for (int d = 0; d < 3; ++d) {
    bench::row({"Def. " + std::to_string(d + 1),
                bench::pct(median(vp_fraction[d])), paper_vp[d],
                bench::pct(median(update_fraction[d])), paper_upd[d]},
               16);
  }
  bench::note("expected shape: both columns decrease monotonically with "
              "stricter definitions and stay substantial even for Def. 3");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
