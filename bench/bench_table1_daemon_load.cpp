// Table 1 (§8): proportion of updates lost by the BGP daemons on a single
// CPU, as a function of the number of peers (100 / 1k / 10k), the update
// rate (average 28K/h vs 99th-percentile 241K/h) and whether GILL's
// filters are applied.
//
// The paper measures this on an Apple M1 Pro. We (a) measure the real
// per-update costs of this implementation's decode / filter / store stages
// with the actual daemon pipeline, and (b) evaluate the single-CPU
// capacity model on both the measured costs and the paper-calibrated
// defaults. We also reproduce the §8 FRR comparison: a route-map engine
// evaluating rules by linear scan collapses after a few rules, while the
// hash-table filters sustain ~1M rules.
#include <random>

#include "bench_util.hpp"
#include "daemon/daemon.hpp"

namespace {

using namespace gill;

net::Prefix nth_prefix(std::uint32_t i) {
  return net::Prefix(net::IpAddress::v4((10u << 24) + (i << 8)), 24);
}

/// Measures decode+filter+store microcosts by pushing `count` updates
/// through a real daemon session.
struct MeasuredCosts {
  double decode_us;
  double filter_us;
  double store_us;
};

MeasuredCosts measure_costs(std::size_t count) {
  // Pre-encode `count` updates on the wire.
  daemon::Transport transport;
  daemon::FakePeer peer(65010, transport);
  filt::FilterTable filters;
  for (std::uint32_t i = 0; i < count; ++i) {
    filters.add_drop(1, nth_prefix(i % 1000));  // matches everything
  }

  auto run = [&](const filt::FilterTable* table, daemon::MrtStore* store) {
    daemon::Transport t;
    daemon::FakePeer p(65010, t);
    daemon::BgpDaemon d(1, 65000, t, table, store);
    d.start(0);
    p.poll();
    d.poll(1);
    p.poll();
    for (std::uint32_t i = 0; i < count; ++i) {
      bgp::Update u;
      u.prefix = nth_prefix(i % 1000);
      u.path = bgp::AsPath{65010, 65020, 65030};
      u.communities = bgp::CommunitySet{{65010, 100}};
      p.send_update(u);
    }
    bench::Stopwatch watch;
    d.poll(2);
    return watch.seconds() * 1e6 / static_cast<double>(count);
  };

  const double decode_only = run(nullptr, nullptr);
  const double decode_filter = run(&filters, nullptr);  // everything dropped
  daemon::MrtStore store;
  const double decode_store = run(nullptr, &store);
  // Persist the MRT buffer to disk to include the write cost.
  bench::Stopwatch disk;
  store.save("/tmp/gill_table1_store.mrt");
  const double disk_us =
      disk.seconds() * 1e6 / static_cast<double>(store.stored());
  std::remove("/tmp/gill_table1_store.mrt");

  MeasuredCosts costs;
  costs.decode_us = decode_only;
  costs.filter_us = std::max(0.01, decode_filter - decode_only);
  costs.store_us = std::max(0.1, decode_store - decode_only + disk_us);
  return costs;
}

std::string cell(double loss) {
  if (loss <= 0.0) return "0%";
  if (loss > 0.6) return "high";
  return bench::pct(loss, 0);
}

void print_table(const daemon::CapacityModel& model, double match_fraction) {
  const double average = 28000.0;
  const double p99 = 241000.0;
  bench::row({"", "peers:", "100", "1000", "10000"});
  for (const bool filters_on : {true, false}) {
    std::printf("%s\n", filters_on ? "With filters (i.e., GILL)"
                                   : "Without filters");
    for (const double rate : {average, p99}) {
      std::vector<std::string> cells{
          "", rate == average ? "avg (28K/h)" : "p99 (241K/h)"};
      for (const std::size_t peers : {100u, 1000u, 10000u}) {
        cells.push_back(cell(model.loss_fraction(
            peers, rate, filters_on, filters_on ? match_fraction : 0.0)));
      }
      bench::row(cells);
    }
  }
}

}  // namespace

int main() {
  bench::header("Table 1 — BGP daemon update loss on one CPU",
                "Table 1 of the paper (daemons with/without filters at "
                "average and 99th-percentile update rates)");
  bench::Stopwatch watch;

  const auto costs = measure_costs(20000);
  std::printf("measured per-update costs on this machine: decode %.2fus, "
              "filter %.2fus, store %.2fus\n\n",
              costs.decode_us, costs.filter_us, costs.store_us);

  const double match = 0.93;  // fraction discarded by GILL's filters (§6)

  std::printf("(a) capacity model with paper-calibrated stage costs:\n");
  print_table(daemon::CapacityModel{}, match);

  std::printf("\n(b) capacity model with costs measured above:\n");
  daemon::CapacityModel measured;
  measured.decode_cost_us = costs.decode_us;
  measured.filter_cost_us = costs.filter_us;
  measured.store_cost_us = costs.store_us;
  print_table(measured, match);

  // --- §8: FRR route-maps vs GILL's filters --------------------------------
  std::printf("\nFRR route-map comparison (§8): per-update decision cost\n");
  bench::row({"rules", "route-map us/upd", "hash-filter us/upd"}, 20);
  std::mt19937_64 rng(5);
  for (const std::size_t rules : {10u, 100u, 1000u, 10000u}) {
    filt::RouteMapEngine route_maps;
    filt::FilterTable filters;
    for (std::uint32_t r = 0; r < rules; ++r) {
      route_maps.add_rule(r % 64, nth_prefix(r));
      filters.add_drop(r % 64, nth_prefix(r));
    }
    // Probe with updates that match no rule (worst case for linear scan).
    bgp::Update probe;
    probe.vp = 65;
    probe.prefix = nth_prefix(999999 % 65000);
    probe.path = bgp::AsPath{1, 2, 3};
    constexpr int kProbes = 20000;
    bench::Stopwatch scan;
    std::size_t sink = 0;
    for (int i = 0; i < kProbes; ++i) sink += route_maps.accept(probe);
    const double scan_us = scan.seconds() * 1e6 / kProbes;
    bench::Stopwatch hash;
    for (int i = 0; i < kProbes; ++i) sink += filters.accept(probe);
    const double hash_us = hash.seconds() * 1e6 / kProbes;
    if (sink == 0) std::printf("?");  // keep the loops alive
    bench::row({std::to_string(rules), bench::num(scan_us, 3),
                bench::num(hash_us, 3)},
               20);
  }
  bench::note("paper: an FRR server handles ~10 route-maps, far fewer than "
              "the ~1M filters GILL generates; hash-indexed filters are "
              "O(1) per update regardless of the rule count");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
