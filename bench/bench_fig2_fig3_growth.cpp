// Fig. 2 (growth in VPs, flat coverage) and Fig. 3 (growth in updates).
// The paper measures RIS/RV archives from 2003-2023; we regenerate the
// curves from the calibrated growth model (see DESIGN.md, substitutions).
#include "bench_util.hpp"
#include "collector/platform.hpp"

int main() {
  using namespace gill;
  using collect::GrowthModel;

  bench::header("Fig. 2 — Growth in VPs / coverage of RIS+RV",
                "Fig. 2 of the paper: #AS hosting a VP grows linearly while "
                "the fraction of ASes hosting a VP stays flat (~1%)");
  bench::row({"year", "#AS w/ VP", "#ASes", "coverage"});
  for (int year = 2003; year <= 2023; year += 2) {
    const auto y = static_cast<double>(year);
    bench::row({std::to_string(year),
                bench::num(GrowthModel::vp_hosting_ases(y), 0),
                bench::num(GrowthModel::internet_ases(y), 0),
                bench::pct(GrowthModel::coverage(y), 2)});
  }
  bench::note("paper: coverage flat around 1% for two decades despite "
              "continuously added peers");

  std::printf("\n");
  bench::header("Fig. 3 — Growth in updates collected by RIS and RV",
                "Fig. 3a: hourly average updates per VP; Fig. 3b: updates "
                "per hour among all VPs (quadratic compound effect, §3.2)");
  bench::row({"year", "upd/h per VP", "total upd/h", "total upd/day"});
  for (int year = 2003; year <= 2023; year += 2) {
    const auto y = static_cast<double>(year);
    bench::row({std::to_string(year),
                bench::num(GrowthModel::updates_per_vp_hour(y), 0),
                bench::num(GrowthModel::total_updates_per_hour(y), 0),
                bench::num(GrowthModel::total_updates_per_hour(y) * 24.0, 0)});
  }
  const double growth_per_vp = GrowthModel::updates_per_vp_hour(2023) /
                               GrowthModel::updates_per_vp_hour(2003);
  const double growth_total = GrowthModel::total_updates_per_hour(2023) /
                              GrowthModel::total_updates_per_hour(2003);
  std::printf("\nper-VP growth 2003->2023: %.1fx; total growth: %.1fx "
              "(superlinear, as in Fig. 3b)\n",
              growth_per_vp, growth_total);
  bench::note("paper endpoints: ~28K upd/h per VP (2023 avg), billions of "
              "updates per day across all VPs");
  return 0;
}
