// Archive store throughput: rotated MRT segments written through the
// SegmentWriter's async pool path (the gill-collectord configuration),
// then the read side at production scale (DESIGN.md §15): a cold
// index-pruned query through the serial reader, the query engine's
// cold-vs-hot latency over the segment cache, and N concurrent clients
// scanning the full store with a 1-thread vs 4-thread scan pool. Reports
// append records/sec, sealed segment count, query latencies, cache
// effectiveness and the concurrent scaling factor, and emits
// BENCH_archive.json.
//
// The paper's busiest VPs export ~28K updates/hour (~8/sec); the floor
// enforced under --strict (20000 records/sec appended) keeps >2500x
// headroom per collector even on a loaded CI box, so the disk path can
// never be the bottleneck the event loop feels. The read-side floors
// (hot >= 2x cold; >= 1.5x concurrent scaling at 4 scan threads, gated on
// >= 4 hardware threads) pin down the two claims the query engine makes:
// the cache removes the disk+decompress cost, and segment fan-out turns
// extra cores into operator-visible throughput.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/query_engine.hpp"
#include "archive/segment_cache.hpp"
#include "bench_util.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace gill;
namespace fs = std::filesystem;

constexpr std::uint64_t kTotalRecords = 200000;
constexpr std::uint32_t kVps = 16;
constexpr bgp::Timestamp kRotateSecs = 900;
constexpr double kStrictRecordsPerSecFloor = 20000.0;
constexpr double kStrictHotSpeedupFloor = 2.0;
constexpr double kStrictConcurrentScalingFloor = 1.5;
constexpr int kConcurrentClients = 4;
constexpr int kScansPerClient = 3;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

bgp::Update synth_update(std::uint64_t i) {
  bgp::Update update;
  update.vp = static_cast<bgp::VpId>(i % kVps);
  // ~10 windows over the run: several rotations and a multi-segment index.
  update.time = static_cast<bgp::Timestamp>(
      1000 + i * (kRotateSecs * 10) / kTotalRecords);
  update.prefix = net::Prefix::parse("10." + std::to_string((i >> 8) % 200) +
                                     "." + std::to_string(i % 250) + ".0/24")
                      .value();
  update.path = bgp::AsPath{65010, static_cast<bgp::AsNumber>(64512 + i % 64)};
  return update;
}

/// Full-store scan through the engine; returns matched record count.
std::uint64_t drain_engine(archive::QueryEngine& engine) {
  auto cursor = engine.query({});
  std::string sink;
  while (cursor->next_chunk(sink)) {
    sink.clear();
  }
  return cursor->records_streamed();
}

/// kConcurrentClients threads each running kScansPerClient full scans on a
/// shared engine with `threads` scan workers and no cache (disk+decompress
/// on every scan — the part fan-out is supposed to hide). Returns
/// records/sec aggregated over all clients.
double concurrent_throughput(const std::string& directory,
                             std::size_t threads,
                             metrics::Registry& registry) {
  par::ThreadPool pool(threads, &registry);
  archive::QueryEngineConfig config;
  config.directory = directory;
  config.pool = &pool;
  config.registry = &registry;
  archive::QueryEngine engine(config);
  if (!engine.open()) return 0.0;
  std::vector<std::uint64_t> streamed(kConcurrentClients, 0);
  const bench::Stopwatch watch;
  std::vector<std::thread> clients;
  for (int c = 0; c < kConcurrentClients; ++c) {
    clients.emplace_back([&engine, &streamed, c] {
      for (int i = 0; i < kScansPerClient; ++i) {
        streamed[static_cast<std::size_t>(c)] += drain_engine(engine);
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = watch.seconds();
  std::uint64_t total = 0;
  for (const std::uint64_t records : streamed) total += records;
  return seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Archive store: append, cold/hot query, concurrent scans",
                "§8 collector storage path (update archival at scale)");

  const fs::path dir = fs::temp_directory_path() / "gill_bench_archive";
  fs::remove_all(dir);
  fs::create_directories(dir);

  metrics::Registry registry;
  par::ThreadPool pool(1, &registry);  // the collectord archive-I/O pool
  archive::SegmentWriterConfig config;
  config.directory = dir.string();
  config.rotate_secs = kRotateSecs;
  config.compress = archive::compression_available();
  config.pool = &pool;
  config.registry = &registry;
  archive::SegmentWriter writer(config);
  if (!writer.open()) {
    std::fprintf(stderr, "error: cannot open archive at %s\n",
                 dir.string().c_str());
    return 1;
  }

  const bench::Stopwatch write_watch;
  for (std::uint64_t i = 0; i < kTotalRecords; ++i) {
    writer.store(synth_update(i));
  }
  writer.close();  // rotate + drain the I/O jobs: everything is on disk
  const double write_seconds = write_watch.seconds();
  if (writer.failed()) {
    std::fprintf(stderr, "error: writer failed mid-run\n");
    return 1;
  }
  const double records_per_sec =
      static_cast<double>(kTotalRecords) / write_seconds;
  const std::uint64_t bytes_written =
      registry.counter_total("gill_archive_bytes_written_total");

  // Cold query: a fresh reader loads the manifest, prunes on the index and
  // streams one VP's middle window — the /data request an operator issues.
  archive::QueryOptions options;
  options.vp = 3;
  options.start = 1000 + kRotateSecs * 4;
  options.end = 1000 + kRotateSecs * 6;
  const bench::Stopwatch query_watch;
  archive::ArchiveReader reader(&registry);
  if (!reader.open(dir.string())) {
    std::fprintf(stderr, "error: cannot reopen archive for the query\n");
    return 1;
  }
  archive::QueryCursor cursor = reader.query(options);
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const double query_seconds = query_watch.seconds();
  const std::uint64_t matched = cursor.records_streamed();
  const double streamed_per_sec =
      query_seconds > 0.0 ? static_cast<double>(matched) / query_seconds : 0.0;

  // Cold vs hot through the query engine: the first full scan loads (and
  // decompresses) every segment from disk into the cache; the repeats are
  // served from memory. Best-of-three on the hot side irons out scheduler
  // noise.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t scan_threads = hw_threads >= 4 ? 4 : 1;
  double engine_cold_seconds = 0.0;
  double engine_hot_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_disk_reads = 0;
  {
    par::ThreadPool scan_pool(scan_threads, &registry);
    archive::SegmentCache cache(
        {.max_bytes = 512 * 1024 * 1024, .registry = &registry});
    archive::QueryEngineConfig engine_config;
    engine_config.directory = dir.string();
    engine_config.pool = &scan_pool;
    engine_config.cache = &cache;
    engine_config.registry = &registry;
    archive::QueryEngine engine(engine_config);
    if (!engine.open()) {
      std::fprintf(stderr, "error: cannot open the query engine\n");
      return 1;
    }
    const bench::Stopwatch cold_watch;
    const std::uint64_t cold_records = drain_engine(engine);
    engine_cold_seconds = cold_watch.seconds();
    if (cold_records != kTotalRecords) {
      std::fprintf(stderr, "error: cold engine scan streamed %llu of %llu\n",
                   static_cast<unsigned long long>(cold_records),
                   static_cast<unsigned long long>(kTotalRecords));
      return 1;
    }
    engine_hot_seconds = 1e9;
    for (int i = 0; i < 3; ++i) {
      const bench::Stopwatch hot_watch;
      drain_engine(engine);
      engine_hot_seconds = std::min(engine_hot_seconds, hot_watch.seconds());
    }
    cache_hits = cache.hits();
    cache_disk_reads = cache.disk_reads();
  }
  const double hot_speedup = engine_hot_seconds > 0.0
                                 ? engine_cold_seconds / engine_hot_seconds
                                 : 0.0;

  // Concurrent clients: same store, no cache, 1-thread vs 4-thread scan
  // pool. The ratio is what an operator gains from cores when several
  // GET /v1/data requests land at once.
  const double throughput_pool1 =
      concurrent_throughput(dir.string(), 1, registry);
  const double throughput_pool4 =
      concurrent_throughput(dir.string(), 4, registry);
  const double concurrent_scaling =
      throughput_pool1 > 0.0 ? throughput_pool4 / throughput_pool1 : 0.0;

  bench::row({"metric", "value"}, 30);
  bench::row({"records_appended", bench::num(kTotalRecords, 0)}, 30);
  bench::row({"segments_sealed",
              bench::num(static_cast<double>(writer.segments_sealed()), 0)},
             30);
  bench::row({"compressed", archive::compression_available() ? "yes" : "no"},
             30);
  bench::row({"bytes_written",
              bench::num(static_cast<double>(bytes_written), 0)}, 30);
  bench::row({"append_elapsed_s", bench::num(write_seconds, 3)}, 30);
  bench::row({"append_records_per_sec", bench::num(records_per_sec, 0)}, 30);
  bench::row({"query_matched_records",
              bench::num(static_cast<double>(matched), 0)}, 30);
  bench::row({"query_latency_ms", bench::num(query_seconds * 1000.0, 2)}, 30);
  bench::row({"query_records_per_sec", bench::num(streamed_per_sec, 0)}, 30);
  bench::row({"engine_cold_ms",
              bench::num(engine_cold_seconds * 1000.0, 2)}, 30);
  bench::row({"engine_hot_ms", bench::num(engine_hot_seconds * 1000.0, 2)},
             30);
  bench::row({"hot_speedup", bench::num(hot_speedup, 2)}, 30);
  bench::row({"cache_hits", bench::num(static_cast<double>(cache_hits), 0)},
             30);
  bench::row({"cache_disk_reads",
              bench::num(static_cast<double>(cache_disk_reads), 0)}, 30);
  bench::row({"concurrent_clients", bench::num(kConcurrentClients, 0)}, 30);
  bench::row({"throughput_pool1_rec_per_s",
              bench::num(throughput_pool1, 0)}, 30);
  bench::row({"throughput_pool4_rec_per_s",
              bench::num(throughput_pool4, 0)}, 30);
  bench::row({"concurrent_scaling", bench::num(concurrent_scaling, 2)}, 30);

  std::string json = "{\"bench\":\"archive\",";
  json += "\"records\":" + std::to_string(kTotalRecords) + ",";
  json += "\"segments_sealed\":" + std::to_string(writer.segments_sealed()) +
          ",";
  json += std::string("\"compressed\":") +
          (archive::compression_available() ? "true" : "false") + ",";
  json += "\"bytes_written\":" + std::to_string(bytes_written) + ",";
  json += "\"append_elapsed_s\":" + json_number(write_seconds) + ",";
  json += "\"append_records_per_sec\":" + json_number(records_per_sec) + ",";
  json += "\"query_matched_records\":" + std::to_string(matched) + ",";
  json += "\"query_latency_ms\":" + json_number(query_seconds * 1000.0) + ",";
  json += "\"query_records_per_sec\":" + json_number(streamed_per_sec) + ",";
  json += "\"engine_cold_ms\":" + json_number(engine_cold_seconds * 1000.0) +
          ",";
  json += "\"engine_hot_ms\":" + json_number(engine_hot_seconds * 1000.0) +
          ",";
  json += "\"hot_speedup\":" + json_number(hot_speedup) + ",";
  json += "\"cache_hits\":" + std::to_string(cache_hits) + ",";
  json += "\"cache_disk_reads\":" + std::to_string(cache_disk_reads) + ",";
  json += "\"concurrent_clients\":" + std::to_string(kConcurrentClients) + ",";
  json += "\"scans_per_client\":" + std::to_string(kScansPerClient) + ",";
  json += "\"throughput_pool1_records_per_sec\":" +
          json_number(throughput_pool1) + ",";
  json += "\"throughput_pool4_records_per_sec\":" +
          json_number(throughput_pool4) + ",";
  json += "\"concurrent_scaling\":" + json_number(concurrent_scaling) + ",";
  json += "\"hardware_threads\":" + std::to_string(hw_threads) + ",";
  json += "\"strict_append_records_per_sec_floor\":" +
          json_number(kStrictRecordsPerSecFloor) + ",";
  json += "\"strict_hot_speedup_floor\":" +
          json_number(kStrictHotSpeedupFloor) + ",";
  json += "\"strict_concurrent_scaling_floor\":" +
          json_number(kStrictConcurrentScalingFloor) + "}\n";
  std::FILE* out = std::fopen("BENCH_archive.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_archive.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_archive.json\n");
    return 1;
  }
  fs::remove_all(dir);

  if (matched == 0) {
    std::fprintf(stderr, "FAIL: the cold query matched no records\n");
    return 1;
  }
  if (cache_hits == 0) {
    std::fprintf(stderr, "FAIL: the hot scans never hit the cache\n");
    return 1;
  }
  if (strict && records_per_sec < kStrictRecordsPerSecFloor) {
    std::fprintf(stderr, "FAIL: %.0f records/sec is below the %.0f floor\n",
                 records_per_sec, kStrictRecordsPerSecFloor);
    return 1;
  }
  if (strict && hot_speedup < kStrictHotSpeedupFloor) {
    std::fprintf(stderr,
                 "FAIL: hot/cold speedup %.2f is below the %.2f floor\n",
                 hot_speedup, kStrictHotSpeedupFloor);
    return 1;
  }
  if (strict && hw_threads >= 4 &&
      concurrent_scaling < kStrictConcurrentScalingFloor) {
    std::fprintf(stderr,
                 "FAIL: concurrent scaling %.2f is below the %.2f floor "
                 "(4-thread vs 1-thread scan pool)\n",
                 concurrent_scaling, kStrictConcurrentScalingFloor);
    return 1;
  }
  return 0;
}
