// Archive store throughput: rotated MRT segments written through the
// SegmentWriter's async pool path (the gill-collectord configuration),
// then a cold index-pruned query over the sealed store. Reports append
// records/sec, sealed segment count, cold query latency and streamed
// records/sec, and emits BENCH_archive.json.
//
// The paper's busiest VPs export ~28K updates/hour (~8/sec); the floor
// enforced under --strict (20000 records/sec appended) keeps >2500x
// headroom per collector even on a loaded CI box, so the disk path can
// never be the bottleneck the event loop feels.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "bench_util.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace gill;
namespace fs = std::filesystem;

constexpr std::uint64_t kTotalRecords = 200000;
constexpr std::uint32_t kVps = 16;
constexpr bgp::Timestamp kRotateSecs = 900;
constexpr double kStrictRecordsPerSecFloor = 20000.0;

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

bgp::Update synth_update(std::uint64_t i) {
  bgp::Update update;
  update.vp = static_cast<bgp::VpId>(i % kVps);
  // ~10 windows over the run: several rotations and a multi-segment index.
  update.time = static_cast<bgp::Timestamp>(
      1000 + i * (kRotateSecs * 10) / kTotalRecords);
  update.prefix = net::Prefix::parse("10." + std::to_string((i >> 8) % 200) +
                                     "." + std::to_string(i % 250) + ".0/24")
                      .value();
  update.path = bgp::AsPath{65010, static_cast<bgp::AsNumber>(64512 + i % 64)};
  return update;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
  }
  bench::header("Archive store: segment append throughput and cold query",
                "§8 collector storage path (update archival at scale)");

  const fs::path dir = fs::temp_directory_path() / "gill_bench_archive";
  fs::remove_all(dir);
  fs::create_directories(dir);

  metrics::Registry registry;
  par::ThreadPool pool(1, &registry);  // the collectord archive-I/O pool
  archive::SegmentWriterConfig config;
  config.directory = dir.string();
  config.rotate_secs = kRotateSecs;
  config.pool = &pool;
  config.registry = &registry;
  archive::SegmentWriter writer(config);
  if (!writer.open()) {
    std::fprintf(stderr, "error: cannot open archive at %s\n",
                 dir.string().c_str());
    return 1;
  }

  const bench::Stopwatch write_watch;
  for (std::uint64_t i = 0; i < kTotalRecords; ++i) {
    writer.store(synth_update(i));
  }
  writer.close();  // rotate + drain the I/O jobs: everything is on disk
  const double write_seconds = write_watch.seconds();
  if (writer.failed()) {
    std::fprintf(stderr, "error: writer failed mid-run\n");
    return 1;
  }
  const double records_per_sec =
      static_cast<double>(kTotalRecords) / write_seconds;
  const std::uint64_t bytes_written =
      registry.counter_total("gill_archive_bytes_written_total");

  // Cold query: a fresh reader loads the manifest, prunes on the index and
  // streams one VP's middle window — the /data request an operator issues.
  archive::QueryOptions options;
  options.vp = 3;
  options.start = 1000 + kRotateSecs * 4;
  options.end = 1000 + kRotateSecs * 6;
  const bench::Stopwatch query_watch;
  archive::ArchiveReader reader(&registry);
  if (!reader.open(dir.string())) {
    std::fprintf(stderr, "error: cannot reopen archive for the query\n");
    return 1;
  }
  archive::QueryCursor cursor = reader.query(options);
  std::string streamed;
  while (cursor.next_chunk(streamed)) {
  }
  const double query_seconds = query_watch.seconds();
  const std::uint64_t matched = cursor.records_streamed();
  const double streamed_per_sec =
      query_seconds > 0.0 ? static_cast<double>(matched) / query_seconds : 0.0;

  bench::row({"metric", "value"}, 28);
  bench::row({"records_appended", bench::num(kTotalRecords, 0)}, 28);
  bench::row({"segments_sealed",
              bench::num(static_cast<double>(writer.segments_sealed()), 0)},
             28);
  bench::row({"bytes_written",
              bench::num(static_cast<double>(bytes_written), 0)}, 28);
  bench::row({"append_elapsed_s", bench::num(write_seconds, 3)}, 28);
  bench::row({"append_records_per_sec", bench::num(records_per_sec, 0)}, 28);
  bench::row({"query_matched_records",
              bench::num(static_cast<double>(matched), 0)}, 28);
  bench::row({"query_latency_ms", bench::num(query_seconds * 1000.0, 2)}, 28);
  bench::row({"query_records_per_sec", bench::num(streamed_per_sec, 0)}, 28);

  std::string json = "{\"bench\":\"archive\",";
  json += "\"records\":" + std::to_string(kTotalRecords) + ",";
  json += "\"segments_sealed\":" + std::to_string(writer.segments_sealed()) +
          ",";
  json += "\"bytes_written\":" + std::to_string(bytes_written) + ",";
  json += "\"append_elapsed_s\":" + json_number(write_seconds) + ",";
  json += "\"append_records_per_sec\":" + json_number(records_per_sec) + ",";
  json += "\"query_matched_records\":" + std::to_string(matched) + ",";
  json += "\"query_latency_ms\":" + json_number(query_seconds * 1000.0) + ",";
  json += "\"query_records_per_sec\":" + json_number(streamed_per_sec) + ",";
  json += "\"strict_append_records_per_sec_floor\":" +
          json_number(kStrictRecordsPerSecFloor) + "}\n";
  std::FILE* out = std::fopen("BENCH_archive.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    bench::note("wrote BENCH_archive.json");
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_archive.json\n");
    return 1;
  }
  fs::remove_all(dir);

  if (matched == 0) {
    std::fprintf(stderr, "FAIL: the cold query matched no records\n");
    return 1;
  }
  if (strict && records_per_sec < kStrictRecordsPerSecFloor) {
    std::fprintf(stderr, "FAIL: %.0f records/sec is below the %.0f floor\n",
                 records_per_sec, kStrictRecordsPerSecFloor);
    return 1;
  }
  return 0;
}
