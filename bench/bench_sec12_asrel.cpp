// §12 "Immediate benefits" (a) + (b): AS-relationship inference and
// customer cones. The paper replicates CAIDA's methodology [31]/[11] with
// a fixed 648-VP budget and shows that the same number of updates, sampled
// by GILL instead, yields +16% inferred relationships at unchanged
// validation accuracy and fixes customer-cone errors. Here the ground
// truth is the simulated topology, so accuracy and cone errors are exact.
#include <cmath>

#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "sampling/schemes.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"
#include "usecases/as_relationships.hpp"

int main() {
  using namespace gill;
  bench::header("§12(a/b) — AS relationships and customer cones",
                "GILL vs a fixed-VP-subset budget on relationship inference "
                "(paper: +16% relationships, TPR unchanged at 97%) and "
                "ASRank-style customer cones");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 81});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 400; as += 4) {
    config.vp_hosts.push_back(as);
    if (as < 80) config.vp_hosts.push_back(as);
  }
  {
    std::mt19937_64 prefix_rng(82);
    config.prefixes = net::PrefixAllocator::assign(500, prefix_rng, 6);
  }
  config.rng_seed = 83;
  sim::Internet internet(topology, config);
  const auto ribs = internet.rib_dump(0);
  const auto origins = uc::OriginTable::from_rib(ribs);

  sim::WorkloadConfig training_workload;
  training_workload.seed = 84;
  training_workload.duration = 4 * 3600;
  training_workload.hotspot_fraction = 0.25;
  const auto training = sim::generate_workload(internet, 10, training_workload);
  internet.ground_truth().clear();

  sim::WorkloadConfig eval_workload;
  eval_workload.seed = 85;
  eval_workload.duration = 4 * 3600;
  eval_workload.hotspot_fraction = 0.25;
  const auto eval = sim::generate_workload(internet, 5 * 3600, eval_workload);
  const auto truths = internet.ground_truth();

  sample::SamplingContext ctx;
  ctx.all_updates = &eval;
  ctx.all_ribs = &ribs;
  ctx.training = &training;
  ctx.training_ribs = &ribs;
  ctx.topology = &topology;
  ctx.vp_hosts = &config.vp_hosts;
  ctx.truths = &truths;
  ctx.origins = &origins;
  ctx.seed = 86;

  // The "CAIDA 648-VP" counterpart: a fixed subset of 25% of the VPs
  // (CAIDA uses 648 of the ~2500 RIS/RV VPs).
  sample::RandomVpSampler fixed_subset;
  std::vector<bgp::VpId> subset;
  {
    std::mt19937_64 rng(87);
    std::vector<bgp::VpId> all = eval.vps();
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(all.size() / 4);
    subset = all;
  }
  const auto subset_sample = sample::collect_vps(ctx, subset, 0);
  const std::size_t budget = subset_sample.updates.size();

  // GILL at the identical update budget.
  sample::GillSampler gill;
  const auto gill_sample = gill.sample(ctx, budget);

  std::printf("budget: %zu updates (subset of %zu VPs vs GILL over all "
              "%zu)\n\n",
              budget, subset.size(), eval.vps().size());

  // --- (a) relationships ----------------------------------------------------
  const auto subset_inferred = uc::infer_relationships(subset_sample);
  const auto gill_inferred = uc::infer_relationships(gill_sample);
  const auto subset_validation =
      uc::validate_relationships(subset_inferred, topology);
  const auto gill_validation =
      uc::validate_relationships(gill_inferred, topology);

  bench::row({"scheme", "inferred", "accuracy", "c2p-acc", "p2p-acc"}, 12);
  bench::row({"subset", std::to_string(subset_inferred.size()),
              bench::pct(subset_validation.accuracy()),
              bench::pct(subset_validation.c2p_accuracy()),
              bench::pct(subset_validation.p2p_accuracy())},
             12);
  bench::row({"GILL", std::to_string(gill_inferred.size()),
              bench::pct(gill_validation.accuracy()),
              bench::pct(gill_validation.c2p_accuracy()),
              bench::pct(gill_validation.p2p_accuracy())},
             12);
  const double gain =
      static_cast<double>(gill_inferred.size()) /
          std::max<double>(1.0, static_cast<double>(subset_inferred.size())) -
      1.0;
  std::printf("relationship gain with GILL at equal budget: %+.1f%% "
              "(paper: +16%%) with accuracy preserved\n\n", gain * 100.0);

  // --- (b) customer cones ---------------------------------------------------
  const auto truth_cones = topology.all_customer_cone_sizes();
  const auto subset_cones = uc::customer_cones(subset_inferred);
  const auto gill_cones = uc::customer_cones(gill_inferred);

  std::size_t changed = 0, gill_closer = 0, subset_closer = 0;
  double subset_error = 0.0, gill_error = 0.0;
  std::size_t evaluated = 0;
  for (bgp::AsNumber as = 0; as < topology.as_count(); ++as) {
    const auto sit = subset_cones.find(as);
    const auto git = gill_cones.find(as);
    if (sit == subset_cones.end() || git == gill_cones.end()) continue;
    ++evaluated;
    const auto truth = static_cast<double>(truth_cones[as]);
    const double se = std::abs(static_cast<double>(sit->second) - truth);
    const double ge = std::abs(static_cast<double>(git->second) - truth);
    subset_error += se;
    gill_error += ge;
    if (sit->second != git->second) {
      ++changed;
      if (ge < se) ++gill_closer;
      if (se < ge) ++subset_closer;
    }
  }
  std::printf("customer cones (ASRank-style): %zu ASes evaluated, %zu cone "
              "sizes change under GILL sampling\n",
              evaluated, changed);
  std::printf("  of the changed ones, GILL is closer to ground truth for "
              "%zu, the subset for %zu\n", gill_closer, subset_closer);
  std::printf("  mean |cone error|: subset %.2f vs GILL %.2f\n",
              subset_error / std::max<std::size_t>(evaluated, 1),
              gill_error / std::max<std::size_t>(evaluated, 1));
  bench::note("paper: 1067 ASes change CCS; manual checks show the "
              "GILL-based inferences are the accurate ones");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
