// §3.1 "Confirmation with real (but private) data": the paper compares the
// AS links visible from bgp.tools' ~1000 private feeds against RIS+RV and
// finds large *mutually exclusive* visibility (bgp.tools saw 192k links the
// public VPs missed; the public VPs saw 401k links bgp.tools missed).
//
// We reproduce the structure of that comparison: two independently placed
// VP deployments of realistic relative size on one simulated Internet, and
// the sizes of the exclusive link sets.
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "simulator/internet.hpp"
#include "topology/generator.hpp"
#include "usecases/detectors.hpp"

int main() {
  using namespace gill;
  bench::header("§3.1 — Disjoint visibility of independent VP deployments",
                "the bgp.tools vs RIS+RV comparison: each platform sees "
                "many links the other misses");
  bench::Stopwatch watch;

  const auto topology = topo::generate_artificial({.as_count = 2000, .seed = 61});
  const std::uint32_t n = topology.as_count();

  std::mt19937_64 rng(62);
  std::vector<bgp::AsNumber> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  // "Public platform": 40 hosting ASes (2%); "private platform": 25 other
  // hosting ASes (the paper's 2.5:1 VP ratio, disjoint placement).
  sim::InternetConfig config;
  config.vp_hosts.assign(order.begin(), order.begin() + 65);
  sim::Internet internet(topology, config);

  std::vector<bgp::VpId> public_vps, private_vps;
  for (bgp::VpId vp = 0; vp < 40; ++vp) public_vps.push_back(vp);
  for (bgp::VpId vp = 40; vp < 65; ++vp) private_vps.push_back(vp);

  auto link_set = [&](const std::vector<bgp::VpId>& vps) {
    std::unordered_set<std::uint64_t> links;
    for (const auto& link : internet.visible_links(vps)) {
      links.insert(uc::undirected_link_key(link.from, link.to));
    }
    return links;
  };
  const auto public_links = link_set(public_vps);
  const auto private_links = link_set(private_vps);

  std::size_t only_public = 0, only_private = 0, shared = 0;
  for (const auto key : public_links) {
    if (private_links.contains(key)) {
      ++shared;
    } else {
      ++only_public;
    }
  }
  for (const auto key : private_links) {
    if (!public_links.contains(key)) ++only_private;
  }

  bench::row({"link set", "count"}, 26);
  bench::row({"public only", std::to_string(only_public)}, 26);
  bench::row({"private only", std::to_string(only_private)}, 26);
  bench::row({"seen by both", std::to_string(shared)}, 26);
  bench::row({"all existing links", std::to_string(topology.link_count())},
             26);

  const double exclusive_fraction =
      static_cast<double>(only_public + only_private) /
      static_cast<double>(public_links.size() + only_private);
  std::printf("\nexclusive fraction of the union: %s\n",
              bench::pct(exclusive_fraction).c_str());
  bench::note("paper: bgp.tools saw 192k links RIS+RV missed and RIS+RV "
              "saw 401k links bgp.tools missed — the same pattern of "
              "large mutually exclusive visibility motivates merging "
              "many more feeds");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
