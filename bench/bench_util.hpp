// Shared helpers for the experiment harnesses: fixed-width table printing
// and simple wall-clock timing. Every bench binary regenerates one table or
// figure of the paper and prints paper-vs-measured context in its header.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace gill::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Prints one table row of fixed-width cells.
inline void row(const std::vector<std::string>& cells, int width = 12) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string pct(double fraction, int decimals = 1) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

inline std::string num(double value, int decimals = 1) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gill::bench
