// Ablations of GILL's calibrated parameters — the knobs the appendix
// justifies empirically:
//   * the 0.94 reconstitution-power stop threshold (§17.2, Fig. 11);
//   * the 100 s correlation window (§17.1);
//   * γ, the candidate-pool fraction of the anchor selection (§18.4,
//     "we tested a range from 1% to 50%");
//   * the two-day correlation-group construction time (§17.1: one day is
//     unstable, ten days barely better than two).
// Each sweep shows the trade-off that motivates the paper's default.
#include <map>
#include <memory>

#include "anchor/component2.hpp"
#include "bench_util.hpp"
#include "netbase/prefix_alloc.hpp"
#include "filters/filters.hpp"
#include "redundancy/component1.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace {

using namespace gill;

struct StreamFixture {
  topo::AsTopology topology;
  std::unique_ptr<sim::Internet> internet;
  bgp::UpdateStream stream;

  StreamFixture() : topology(topo::generate_artificial(
                        {.as_count = 350, .seed = 71})) {
    sim::InternetConfig config;
    for (bgp::AsNumber as = 0; as < 300; as += 4) {
      config.vp_hosts.push_back(as);
      if (as < 48) config.vp_hosts.push_back(as);
    }
    std::mt19937_64 prefix_rng(72);
    config.prefixes = net::PrefixAllocator::assign(350, prefix_rng, 5);
    config.rng_seed = 73;
    internet = std::make_unique<sim::Internet>(topology, config);
    sim::WorkloadConfig workload;
    workload.seed = 74;
    workload.duration = 2 * 3600;
    workload.hotspot_fraction = 0.3;
    stream = sim::generate_workload(*internet, 10, workload);
  }
};

}  // namespace

int main() {
  bench::header("Ablations — GILL's calibrated parameters",
                "§17.1 (window, construction time), §17.2 (RP threshold), "
                "§18.4 (γ)");
  bench::Stopwatch watch;
  StreamFixture fixture;
  std::printf("stream: %zu updates\n\n", fixture.stream.size());

  // --- RP stop threshold (default 0.94) ------------------------------------
  std::printf("(a) reconstitution-power stop threshold:\n");
  bench::row({"threshold", "|U|/|V|", "mean RP"}, 12);
  for (const double threshold : {0.5, 0.8, 0.9, 0.94, 0.99}) {
    red::Component1Config config;
    config.rp_threshold = threshold;
    const auto result = red::find_redundant_updates(fixture.stream, config);
    bench::row({bench::num(threshold, 2),
                bench::num(result.retained_fraction(), 3),
                bench::num(result.mean_rp, 3)},
               12);
  }
  bench::note("the paper picks 0.94: past it, extra retention buys little "
              "RP (the Fig. 11 knee)");

  // --- correlation window (default 100 s) -----------------------------------
  std::printf("\n(b) correlation window:\n");
  bench::row({"window (s)", "|U|/|V|", "mean RP"}, 12);
  for (const bgp::Timestamp window : {10, 50, 100, 300, 900}) {
    red::Component1Config config;
    config.correlation_window = window;
    const auto result = red::find_redundant_updates(fixture.stream, config);
    bench::row({std::to_string(window),
                bench::num(result.retained_fraction(), 3),
                bench::num(result.mean_rp, 3)},
               12);
  }
  bench::note("too small splits one event's updates into separate bursts "
              "(more retained); too large merges distinct events");

  // --- γ, the anchor candidate-pool fraction (default 10%) ------------------
  std::printf("\n(c) anchor-selection gamma (volume-vs-redundancy knob):\n");
  // Synthetic score matrix: 40 VPs in 8 redundancy clusters of 5; the
  // least redundant VP of each cluster (lowest index) is also the most
  // expensive, so redundancy-only selection picks costly feeds.
  constexpr std::size_t kVps = 40;
  std::vector<std::vector<double>> scores(kVps,
                                          std::vector<double>(kVps, 0.2));
  std::vector<double> volumes(kVps);
  std::vector<bgp::VpId> vps(kVps);
  for (std::size_t i = 0; i < kVps; ++i) {
    vps[i] = static_cast<bgp::VpId>(i);
    volumes[i] = 10.0 + static_cast<double>(4 - i % 5) * 100.0;
    scores[i][i] = 1.0;
    for (std::size_t j = 0; j < kVps; ++j) {
      if (i != j && i / 5 == j / 5) scores[i][j] = 0.95;
    }
  }
  bench::row({"gamma", "#anchors", "mean anchor volume"}, 20);
  for (const double gamma : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    anchor::Component2Config config;
    config.gamma = gamma;
    config.stop_threshold = 0.9;
    const auto result = anchor::select_anchors(scores, vps, volumes, config);
    double volume = 0.0;
    for (const auto position : result.anchor_positions) {
      volume += volumes[position];
    }
    bench::row({bench::num(gamma, 2),
                std::to_string(result.anchors.size()),
                bench::num(volume / std::max<std::size_t>(
                                        result.anchors.size(), 1), 1)},
               20);
  }
  bench::note("low gamma = pure redundancy minimization; higher gamma "
              "admits more candidates and picks cheaper (lower-volume) "
              "ones — the paper settles on 10%");

  // --- correlation-group construction time (default: two days) -------------
  std::printf("\n(d) correlation-group construction time (training length):\n");
  bench::row({"training (h)", "filter match on next window"}, 26);
  for (const int hours : {1, 2, 4, 8}) {
    sim::InternetConfig config;
    for (bgp::AsNumber as = 0; as < 300; as += 4) {
      config.vp_hosts.push_back(as);
    }
    std::mt19937_64 prefix_rng(72);
    config.prefixes = net::PrefixAllocator::assign(350, prefix_rng, 5);
    config.rng_seed = 75;
    sim::Internet internet(fixture.topology, config);
    sim::WorkloadConfig training_workload;
    training_workload.seed = 76;
    training_workload.duration = hours * 3600;
    training_workload.hotspot_fraction = 0.3;
    const auto training =
        sim::generate_workload(internet, 10, training_workload);
    const auto component1 = red::find_redundant_updates(training);
    const auto filters = filt::generate_filters(component1, {});

    sim::WorkloadConfig test_workload;
    test_workload.seed = 77;
    test_workload.hotspot_fraction = 0.3;
    const auto test = sim::generate_workload(
        internet, (hours + 1) * 3600 + 100, test_workload);
    const auto stats = filt::apply_filters(filters, test);
    bench::row({std::to_string(hours), bench::pct(stats.matched_fraction())},
               26);
  }
  bench::note("longer training covers more of the recurrent event space; "
              "returns diminish — the paper's two days balance stability "
              "and compute (94% stable ranking vs 95.8% at ten days)");

  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}
