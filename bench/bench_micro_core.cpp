// Micro-benchmarks (google-benchmark) of the hot paths every experiment
// rests on: prefix parsing, trie lookups, wire encode/decode, MRT
// round-trips, filter decisions, Gao-Rexford route computation and the
// per-VP feature Dijkstra. These are the numbers behind the Table 1
// capacity model's stage costs.
#include <benchmark/benchmark.h>

#include <random>

#include "features/features.hpp"
#include "filters/filters.hpp"
#include "mrt/mrt.hpp"
#include "netbase/prefix_trie.hpp"
#include "simulator/routing.hpp"
#include "topology/generator.hpp"
#include "wire/messages.hpp"

namespace {

using namespace gill;

void BM_PrefixParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Prefix::parse("203.0.113.128/25"));
  }
}
BENCHMARK(BM_PrefixParse);

void BM_PrefixParseV6(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Prefix::parse("2001:db8:dead:beef::/64"));
  }
}
BENCHMARK(BM_PrefixParseV6);

void BM_TrieLongestMatch(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 100000; ++i) {
    trie.insert(net::Prefix(net::IpAddress::v4(static_cast<std::uint32_t>(rng())),
                            8 + static_cast<unsigned>(rng() % 17)),
                i);
  }
  const auto probe = net::Prefix::parse("172.16.32.0/24").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(probe));
  }
  state.SetLabel("100k-entry trie");
}
BENCHMARK(BM_TrieLongestMatch);

wire::UpdateMessage sample_update_message() {
  wire::UpdateMessage update;
  update.nlri = {net::Prefix::parse("203.0.113.0/24").value()};
  update.path = bgp::AsPath{65001, 65002, 65003, 65004};
  update.communities = bgp::CommunitySet{{65001, 100}, {65002, 200}};
  update.next_hop = 0x0A000001;
  return update;
}

void BM_WireEncodeUpdate(benchmark::State& state) {
  const auto update = sample_update_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(update));
  }
}
BENCHMARK(BM_WireEncodeUpdate);

void BM_WireDecodeUpdate(benchmark::State& state) {
  const auto bytes = wire::encode(sample_update_message());
  for (auto _ : state) {
    std::size_t consumed = 0;
    benchmark::DoNotOptimize(wire::decode(bytes, consumed));
  }
}
BENCHMARK(BM_WireDecodeUpdate);

bgp::Update sample_stored_update() {
  bgp::Update u;
  u.vp = 42;
  u.time = 1693526400;
  u.prefix = net::Prefix::parse("203.0.113.0/24").value();
  u.path = bgp::AsPath{65001, 65002, 65003};
  u.communities = bgp::CommunitySet{{65001, 100}};
  return u;
}

void BM_MrtWrite(benchmark::State& state) {
  const auto update = sample_stored_update();
  for (auto _ : state) {
    mrt::Writer writer;
    writer.write_update(update);
    benchmark::DoNotOptimize(writer.buffer().size());
  }
}
BENCHMARK(BM_MrtWrite);

void BM_MrtRead(benchmark::State& state) {
  mrt::Writer writer;
  writer.write_update(sample_stored_update());
  for (auto _ : state) {
    mrt::Reader reader(writer.buffer());
    benchmark::DoNotOptimize(reader.next());
  }
}
BENCHMARK(BM_MrtRead);

void BM_FilterAccept(benchmark::State& state) {
  filt::FilterTable table;
  std::mt19937_64 rng(2);
  const auto rules = static_cast<std::size_t>(state.range(0));
  for (std::size_t r = 0; r < rules; ++r) {
    table.add_drop(static_cast<bgp::VpId>(rng() % 1000),
                   net::Prefix(net::IpAddress::v4(
                                   static_cast<std::uint32_t>(rng())),
                               24));
  }
  const auto probe = sample_stored_update();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.accept(probe));
  }
  state.SetLabel(std::to_string(rules) + " rules");
}
BENCHMARK(BM_FilterAccept)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_GaoRexfordCompute(benchmark::State& state) {
  const auto topology = topo::generate_artificial(
      {.as_count = static_cast<std::uint32_t>(state.range(0)), .seed = 3});
  sim::RoutingEngine engine(topology);
  bgp::AsNumber origin = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(origin));
    origin = (origin + 1) % topology.as_count();
  }
  state.SetLabel(std::to_string(state.range(0)) + " ASes");
}
BENCHMARK(BM_GaoRexfordCompute)->Arg(500)->Arg(2000)->Arg(6000);

void BM_FeatureDijkstra(benchmark::State& state) {
  const auto topology = topo::generate_artificial({.as_count = 500, .seed = 4});
  sim::RoutingEngine engine(topology);
  feat::VpGraph graph;
  for (bgp::AsNumber origin = 0; origin < 500; origin += 2) {
    const auto routing = engine.compute(origin);
    if (routing.has_route(1)) graph.add_route(routing.path(1));
  }
  const feat::FeatureComputer computer(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(computer.node_features(1));
  }
  state.SetLabel(std::to_string(graph.node_count()) + " nodes");
}
BENCHMARK(BM_FeatureDijkstra);

}  // namespace

BENCHMARK_MAIN();
